package eval

// The stateful scenario library: the three streaming workloads of the
// evaluation — stateful firewall/NAT, heavy-hitter count-min sketch, and
// flowlet load balancing — packaged with their control-plane contents,
// flow-ordered trace synthesizers, and lane-affinity keys, so the same
// scenario drives golden tests, tier-equivalence certification, the
// difftest campaign, and the stream throughput experiment.

import (
	"fmt"
	"math/rand"

	"lyra/internal/dataplane"
	"lyra/internal/topo"
)

// Scenario is one stateful streaming workload.
type Scenario struct {
	// Name is the short scenario id ("nat", "sketch", "flowlet").
	Name string
	// Program names the testdata/programs source file and Algorithm the
	// algorithm whose scope paths packets replay along.
	Program   string
	Algorithm string
	// TSField, when non-empty, receives each trace record's capture
	// timestamp on replay (the flowlet workload reads time from the
	// packet, like a replayed pcap).
	TSField string
	// LaneSafe reports whether the workload obeys the lane-affinity
	// contract: all cross-packet state interactions confined to packets
	// with equal flow key. The sketch is not lane-safe (rows are
	// cross-flow); it streams at one lane or merges rows afterwards.
	LaneSafe bool
	// StateExterns and StateGlobals name the per-flow state to compare in
	// determinism checks, with KeySpace enumerating the flow-key values a
	// trace can produce.
	StateExterns []string
	StateGlobals []string
	// FlowKey builds the lane-affinity key extractor for a deployment.
	FlowKey func(*dataplane.Engine) (func(*dataplane.FlatPacket) uint64, error)
	// Populate fills the control-plane tables the workload expects.
	Populate func(*dataplane.Tables)
	// Trace synthesizes an n-packet flow-ordered capture.
	Trace func(n int, seed int64) []dataplane.TraceRecord
}

// ScopeText renders the scenario's MULTI-SW scope for a ToR/Agg network
// (the Testbed or a fat-tree pod).
func (sc Scenario) ScopeText() string {
	return fmt.Sprintf("%s: [ ToR*,Agg* | MULTI-SW | (Agg*->ToR*) ]", sc.Algorithm)
}

// Deploy compiles the scenario onto net, populates its tables, and
// returns the deployment plus the longest flow path.
func (sc Scenario) Deploy(net *topo.Network) (*dataplane.Deployment, []string, error) {
	src, err := LoadProgram(sc.Program)
	if err != nil {
		return nil, nil, err
	}
	_, plan, err := compileScoped(src, sc.ScopeText(), net)
	if err != nil {
		return nil, nil, err
	}
	tables := dataplane.NewTables()
	if sc.Populate != nil {
		sc.Populate(tables)
	}
	dep, err := dataplane.NewDeployment(plan, tables)
	if err != nil {
		return nil, nil, err
	}
	paths := plan.Input.Scopes[sc.Algorithm].Paths
	if len(paths) == 0 {
		return nil, nil, fmt.Errorf("no flow paths for %s", sc.Algorithm)
	}
	best := paths[0]
	for _, p := range paths {
		if len(p) > len(best) {
			best = p
		}
	}
	return dep, best, nil
}

// natTuple is the canonical 5-tuple of one NAT flow; ids stay in a small
// space so traces revisit flows.
func natTuple(id int) (src, dst, sport, dport uint64) {
	return 0x0A000000 + uint64(id%32), 0x0B000000 + uint64(id%7),
		uint64(1024 + id), 443
}

// Scenarios returns the library.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name:         "nat",
			Program:      "stateful_nat",
			Algorithm:    "stateful_nat",
			LaneSafe:     true,
			StateExterns: []string{"conn_table"},
			FlowKey: func(eng *dataplane.Engine) (func(*dataplane.FlatPacket) uint64, error) {
				return eng.FlowKeyHash("crc32_hash", 32, 0,
					"ipv4.src_ip", "ipv4.dst_ip", "ipv4.protocol", "tcp.src_port", "tcp.dst_port")
			},
			Populate: func(t *dataplane.Tables) {
				for i := uint64(0); i < 32; i++ {
					t.Set("nat_pool", 0x0A000000+i, 0xC0A80000+i)
				}
			},
			Trace: func(n int, seed int64) []dataplane.TraceRecord {
				rng := rand.New(rand.NewSource(seed))
				recs := make([]dataplane.TraceRecord, n)
				for i := range recs {
					id := rng.Intn(24)
					src, dst, sport, dport := natTuple(id)
					// Mostly outbound; inbound packets probe the connection
					// table, including some flows never established (dropped).
					dir := uint64(0)
					if rng.Intn(3) == 0 {
						dir = 1
					}
					recs[i] = dataplane.TraceRecord{
						TS:    uint64(1000 + i*13),
						Valid: []string{"ethernet", "ipv4", "tcp", "nat_meta"},
						Fields: map[string]uint64{
							"ipv4.src_ip":   src,
							"ipv4.dst_ip":   dst,
							"ipv4.protocol": 6,
							"tcp.src_port":  sport,
							"tcp.dst_port":  dport,
							"nat_meta.dir":  dir,
							"ipv4.ttl":      64,
						},
					}
				}
				return recs
			},
		},
		{
			Name:         "sketch",
			Program:      "heavy_hitter",
			Algorithm:    "heavy_hitter",
			LaneSafe:     false,
			StateGlobals: []string{"cms_row0", "cms_row1", "cms_row2"},
			FlowKey: func(eng *dataplane.Engine) (func(*dataplane.FlatPacket) uint64, error) {
				return eng.FlowKeyHash("crc32_hash", 32, 0, "ipv4.src_ip", "ipv4.dst_ip")
			},
			Trace: func(n int, seed int64) []dataplane.TraceRecord {
				rng := rand.New(rand.NewSource(seed))
				recs := make([]dataplane.TraceRecord, n)
				for i := range recs {
					// Skewed mix: 4 elephants carry ~40% of packets over a
					// 64-flow tail, so threshold export actually fires.
					var id int
					if rng.Intn(5) < 2 {
						id = rng.Intn(4)
					} else {
						id = 4 + rng.Intn(64)
					}
					recs[i] = dataplane.TraceRecord{
						TS:    uint64(500 + i*7),
						Valid: []string{"ethernet", "ipv4", "hh_meta"},
						Fields: map[string]uint64{
							"ipv4.src_ip":   0x0A000000 + uint64(id),
							"ipv4.dst_ip":   0x0B000000 + uint64(id%9),
							"ipv4.protocol": 17,
							"ipv4.ttl":      64,
						},
					}
				}
				return recs
			},
		},
		{
			Name:         "flowlet",
			Program:      "flowlet_lb",
			Algorithm:    "flowlet_lb",
			TSField:      "lb_meta.ts",
			LaneSafe:     true,
			StateGlobals: []string{"flowlet_last", "flowlet_bucket", "flowlet_count"},
			FlowKey: func(eng *dataplane.Engine) (func(*dataplane.FlatPacket) uint64, error) {
				// State is indexed by fid = crc32(5-tuple) & 255; keying
				// lanes on fid makes index collisions lane collisions.
				return eng.FlowKeyHash("crc32_hash", 32, 255,
					"ipv4.src_ip", "ipv4.dst_ip", "ipv4.protocol", "tcp.src_port", "tcp.dst_port")
			},
			Populate: func(t *dataplane.Tables) {
				for b := uint64(0); b < 64; b++ {
					t.Set("path_table", b, 1+b%8)
				}
			},
			Trace: func(n int, seed int64) []dataplane.TraceRecord {
				rng := rand.New(rand.NewSource(seed))
				recs := make([]dataplane.TraceRecord, n)
				ts := uint64(10000)
				for i := range recs {
					// Bursty arrivals: occasional long gaps split flowlets and
					// force timeout-driven rebinding mid-trace.
					ts += uint64(1 + rng.Intn(40))
					if rng.Intn(50) == 0 {
						ts += 6000
					}
					id := rng.Intn(20)
					src, dst, sport, dport := natTuple(id)
					recs[i] = dataplane.TraceRecord{
						TS:    ts,
						Valid: []string{"ethernet", "ipv4", "tcp", "lb_meta"},
						Fields: map[string]uint64{
							"ipv4.src_ip":   src,
							"ipv4.dst_ip":   dst,
							"ipv4.protocol": 6,
							"tcp.src_port":  sport,
							"tcp.dst_port":  dport,
							"ipv4.ttl":      64,
						},
					}
				}
				return recs
			},
		},
	}
}

// ScenarioByName finds one scenario.
func ScenarioByName(name string) (Scenario, bool) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}
