package eval

import (
	"testing"
)

// TestFigure9Shape verifies the qualitative claims of §7.1 on every row:
// Lyra programs are much shorter than the manual P4_14, and the
// synthesized implementations never use more tables than the manual ones.
func TestFigure9Shape(t *testing.T) {
	rows, err := Figure9()
	if err != nil {
		t.Fatalf("figure9: %v", err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(rows))
	}
	for _, r := range rows {
		if r.LyraLoC >= r.Baseline.LoC {
			t.Errorf("%s: Lyra LoC %d not below manual %d", r.Program, r.LyraLoC, r.Baseline.LoC)
		}
		if r.LyraLogicLoC >= r.Baseline.LogicLoC {
			t.Errorf("%s: Lyra logic LoC %d not below manual %d", r.Program, r.LyraLogicLoC, r.Baseline.LogicLoC)
		}
		if r.P4Tables > r.Baseline.Tables {
			t.Errorf("%s: synthesized %d tables > manual %d", r.Program, r.P4Tables, r.Baseline.Tables)
		}
		if r.P4Registers != r.Baseline.Registers {
			t.Errorf("%s: register count %d != manual %d", r.Program, r.P4Registers, r.Baseline.Registers)
		}
		// NPL logical tables never exceed P4 tables (multi-lookup merging,
		// Figure 9's NPL columns).
		if r.NPLTables > r.P4Tables {
			t.Errorf("%s: NPL %d tables > P4 %d", r.Program, r.NPLTables, r.P4Tables)
		}
		if r.P4Time <= 0 || r.NPLTime <= 0 {
			t.Errorf("%s: missing compile times", r.Program)
		}
		if r.NPLPath <= 0 {
			t.Errorf("%s: missing longest code path", r.Program)
		}
	}
	out := FormatFigure9(rows)
	if len(out) == 0 {
		t.Error("empty table")
	}
}

// TestNetCacheMergeSavings checks §7.1's headline: the manual NetCache has
// substantially more tables than Lyra's output because Lyra merges the
// modular single-action tables.
func TestNetCacheMergeSavings(t *testing.T) {
	rows, err := Figure9()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Program != "netcache" {
			continue
		}
		if r.P4Tables >= r.Baseline.Tables {
			t.Errorf("netcache: no table savings (%d vs %d)", r.P4Tables, r.Baseline.Tables)
		}
		return
	}
	t.Fatal("netcache row missing")
}

func TestFigure10SmallSweep(t *testing.T) {
	pts, err := Figure10([]int{4, 8})
	if err != nil {
		t.Fatalf("figure10: %v", err)
	}
	// 2 chips x 2 k x 3 workloads.
	if len(pts) != 12 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.Time <= 0 {
			t.Errorf("%+v: no time", p)
		}
	}
	if FormatFigure10(pts) == "" {
		t.Error("empty output")
	}
}

func TestExtensibilityCase(t *testing.T) {
	steps, err := Extensibility()
	if err != nil {
		t.Fatalf("extensibility: %v", err)
	}
	if len(steps) != 3 {
		t.Fatalf("steps = %d", len(steps))
	}
	// 1M: ConnTable fits on a single switch per path.
	for sw, n := range steps[0].Shards {
		if n > 1_000_000 {
			t.Errorf("1M case: %s shard %d", sw, n)
		}
	}
	// 4M: the table must be split across at least two switches, and each
	// flow path must see all 4M entries.
	if len(steps[2].Shards) < 2 {
		t.Errorf("4M case not split: %v", steps[2].Shards)
	}
	var total int64
	for _, n := range steps[2].Shards {
		total += n
	}
	if total < 4_000_000 {
		t.Errorf("4M case shard sum = %d", total)
	}
	// §7.2: each recompilation takes well under 10 seconds.
	for _, s := range steps {
		if s.Time.Seconds() > 10 {
			t.Errorf("conn=%d took %s (> 10s)", s.ConnEntries, s.Time)
		}
	}
	if FormatExtensibility(steps) == "" {
		t.Error("empty output")
	}
}

func TestCompositionCase(t *testing.T) {
	steps, err := Composition()
	if err != nil {
		t.Fatalf("composition: %v", err)
	}
	if len(steps) != 4 {
		t.Fatalf("steps = %d", len(steps))
	}
	last := steps[len(steps)-1]
	if last.Switches != 1 || last.Placed != 1 {
		t.Errorf("single-switch composition: %+v", last)
	}
	// §7.3: under five seconds even when squeezed into one ASIC.
	for _, s := range steps {
		if s.Time.Seconds() > 5 {
			t.Errorf("scope %d took %s (> 5s)", s.Switches, s.Time)
		}
	}
	if FormatComposition(steps) == "" {
		t.Error("empty output")
	}
}

func TestLyraLoC(t *testing.T) {
	src := `
// comment
>HEADER:
header_type h { bit[8] f; }
algorithm a {
  x = 1;
}
`
	loc, logic := LyraLoC(src)
	if loc != 4 {
		t.Errorf("loc = %d, want 4", loc)
	}
	if logic != 3 {
		t.Errorf("logic = %d, want 3", logic)
	}
}

func TestAblationsShape(t *testing.T) {
	rows, err := Ablations()
	if err != nil {
		t.Fatalf("ablations: %v", err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	anyMergeWin, anyAbsorbWin := false, false
	for _, r := range rows {
		if r.Optimized > r.NoMerge || r.Optimized > r.NoAbsorb {
			t.Errorf("%s: optimized (%d) worse than ablated (merge %d, absorb %d)",
				r.Program, r.Optimized, r.NoMerge, r.NoAbsorb)
		}
		if r.NoMerge > r.Optimized {
			anyMergeWin = true
		}
		if r.NoAbsorb > r.Optimized {
			anyAbsorbWin = true
		}
	}
	if !anyMergeWin || !anyAbsorbWin {
		t.Errorf("each optimization must win somewhere: merge=%v absorb=%v", anyMergeWin, anyAbsorbWin)
	}
	if FormatAblations(rows) == "" {
		t.Error("empty output")
	}
}
