package eval

import (
	"testing"

	"lyra/internal/dataplane"
	"lyra/internal/topo"
)

// scenarioFixture deploys one scenario on the testbed and flattens its
// trace for one deployment's engine.
func scenarioFixture(t testing.TB, sc Scenario, nPkts int) (*dataplane.Deployment, []string, []dataplane.TraceRecord) {
	t.Helper()
	dep, path, err := sc.Deploy(topo.Testbed())
	if err != nil {
		t.Fatalf("%s: deploy: %v", sc.Name, err)
	}
	return dep, path, sc.Trace(nPkts, 17)
}

// openScenarioStream opens a stream on a fresh deployment of sc.
func openScenarioStream(t testing.TB, sc Scenario, path []string, lanes, batch int, tier dataplane.ExecutorTier) (*dataplane.Stream, *dataplane.Engine, *dataplane.Deployment) {
	t.Helper()
	dep, _, err := sc.Deploy(topo.Testbed())
	if err != nil {
		t.Fatalf("%s: deploy: %v", sc.Name, err)
	}
	eng, err := dep.Engine()
	if err != nil {
		t.Fatal(err)
	}
	key, err := sc.FlowKey(eng)
	if err != nil {
		t.Fatalf("%s: flow key: %v", sc.Name, err)
	}
	s, err := dep.OpenStream(path, dataplane.StreamOptions{
		Tier: tier, Lanes: lanes, BatchSize: 16, FlowKey: key,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, eng, dep
}

// TestScenarioStreamTierEquivalence certifies the acceptance property:
// for every scenario, streaming replay is byte-identical per packet to
// one-shot single-worker execution, on the interpreter, engine, and
// compiled tiers — at one lane always, and at four lanes for the
// lane-safe workloads (the sketch's cross-flow rows are exempt by
// contract; TestSketchMergedExport covers its multi-lane story).
func TestScenarioStreamTierEquivalence(t *testing.T) {
	for _, sc := range Scenarios() {
		t.Run(sc.Name, func(t *testing.T) {
			refDep, path, recs := scenarioFixture(t, sc, 500)
			refEng, err := refDep.Engine()
			if err != nil {
				t.Fatal(err)
			}
			ref := refEng.FlattenTrace(recs, sc.TSField)
			refEng.RunBatch(path, nil, ref, 1)

			laneSet := []int{1}
			if sc.LaneSafe {
				laneSet = append(laneSet, 4)
			}
			for _, tier := range []dataplane.ExecutorTier{
				dataplane.TierInterpreter, dataplane.TierEngine, dataplane.TierCompiled,
			} {
				for _, lanes := range laneSet {
					s, eng, _ := openScenarioStream(t, sc, path, lanes, 16, tier)
					got := eng.FlattenTrace(recs, sc.TSField)
					for off := 0; off < len(got); off += 37 {
						hi := off + 37
						if hi > len(got) {
							hi = len(got)
						}
						if err := s.Feed(got[off:hi]...); err != nil {
							t.Fatal(err)
						}
					}
					s.Close()
					for i := range got {
						if diff := dataplane.DiffPackets(ref[i].Packet(), got[i].Packet(), nil); len(diff) > 0 {
							t.Fatalf("%s tier %v lanes %d: packet %d diverges from one-shot: %v",
								sc.Name, tier, lanes, i, diff)
						}
					}
				}
			}
		})
	}
}

// flowStateOf reads one flow key's observable state — extern entries and
// per-flow global cells, unioned/summed across the path's switches — from
// a closed stream.
func flowStateOf(t *testing.T, sc Scenario, s *dataplane.Stream, path []string, key uint64) map[string]uint64 {
	t.Helper()
	state := map[string]uint64{}
	lane := s.LaneOf(key)
	for _, ext := range sc.StateExterns {
		for _, sw := range path {
			if v, ok, err := s.TableEntry(lane, sw, ext, key); err == nil && ok {
				state[ext] = v
				break
			}
		}
	}
	for _, g := range sc.StateGlobals {
		var sum uint64
		for _, sw := range path {
			if v, err := s.GlobalAt(lane, sw, g, key); err == nil {
				sum += v
			}
		}
		state[g] = sum
	}
	return state
}

// TestLaneAffinityDeterminism is the workers=1 vs workers=N check for the
// NAT and flowlet scenarios: identical per-packet outputs AND identical
// per-flow final state (connection entries, flowlet registers) no matter
// how many lanes the stream fans across, on both flat tiers. Runs under
// -race in CI, so the parallel drain path is also exercised for races.
func TestLaneAffinityDeterminism(t *testing.T) {
	for _, name := range []string{"nat", "flowlet"} {
		sc, ok := ScenarioByName(name)
		if !ok {
			t.Fatalf("scenario %q missing", name)
		}
		t.Run(name, func(t *testing.T) {
			_, path, recs := scenarioFixture(t, sc, 600)
			for _, tier := range []dataplane.ExecutorTier{dataplane.TierEngine, dataplane.TierCompiled} {
				s1, eng1, _ := openScenarioStream(t, sc, path, 1, 16, tier)
				sN, engN, _ := openScenarioStream(t, sc, path, 4, 16, tier)
				p1 := eng1.FlattenTrace(recs, sc.TSField)
				pN := engN.FlattenTrace(recs, sc.TSField)
				if err := s1.Feed(p1...); err != nil {
					t.Fatal(err)
				}
				if err := sN.Feed(pN...); err != nil {
					t.Fatal(err)
				}
				s1.Close()
				sN.Close()
				for i := range p1 {
					if diff := dataplane.DiffPackets(p1[i].Packet(), pN[i].Packet(), nil); len(diff) > 0 {
						t.Fatalf("%s %v: packet %d differs between 1 and 4 lanes: %v", name, tier, i, diff)
					}
				}
				// Per-flow final state: every flow key the trace produced
				// must read back identically from both streams.
				key, err := sc.FlowKey(eng1)
				if err != nil {
					t.Fatal(err)
				}
				seen := map[uint64]bool{}
				fresh := eng1.FlattenTrace(recs, sc.TSField)
				for _, f := range fresh {
					k := key(f)
					if seen[k] {
						continue
					}
					seen[k] = true
					st1 := flowStateOf(t, sc, s1, path, k)
					stN := flowStateOf(t, sc, sN, path, k)
					if len(st1) != len(stN) {
						t.Fatalf("%s %v flow %#x: state shape differs: %v vs %v", name, tier, k, st1, stN)
					}
					for what, v1 := range st1 {
						if vN, ok := stN[what]; !ok || vN != v1 {
							t.Fatalf("%s %v flow %#x: %s = %d at 1 lane, %d at 4 lanes",
								name, tier, k, what, v1, vN)
						}
					}
				}
				if len(seen) < 2 {
					t.Fatalf("%s: trace produced %d distinct flows; determinism check is vacuous", name, len(seen))
				}
			}
		})
	}
}

// TestSketchMergedExport covers the sketch's multi-lane story: per-lane
// partial rows summed with MergedGlobal equal the single-lane rows cell
// by cell, because every row write is a pure increment.
func TestSketchMergedExport(t *testing.T) {
	sc, ok := ScenarioByName("sketch")
	if !ok {
		t.Fatal("sketch scenario missing")
	}
	_, path, recs := scenarioFixture(t, sc, 800)
	s1, eng1, _ := openScenarioStream(t, sc, path, 1, 16, dataplane.TierEngine)
	sN, engN, _ := openScenarioStream(t, sc, path, 4, 16, dataplane.TierEngine)
	p1 := eng1.FlattenTrace(recs, sc.TSField)
	pN := engN.FlattenTrace(recs, sc.TSField)
	if err := s1.Feed(p1...); err != nil {
		t.Fatal(err)
	}
	if err := sN.Feed(pN...); err != nil {
		t.Fatal(err)
	}
	s1.Close()
	sN.Close()
	hot := 0
	for _, f := range p1 {
		if p := f.Packet(); p.Fields["hh_meta.hot"] == 1 {
			hot++
		}
	}
	if hot == 0 {
		t.Fatal("no packet crossed the heavy-hitter threshold; trace too light")
	}
	for _, row := range sc.StateGlobals {
		for _, sw := range path {
			m1, err1 := s1.MergedGlobal(sw, row)
			mN, errN := sN.MergedGlobal(sw, row)
			if (err1 == nil) != (errN == nil) {
				t.Fatalf("%s on %s: availability differs: %v vs %v", row, sw, err1, errN)
			}
			if err1 != nil {
				continue
			}
			for i := range m1 {
				if m1[i] != mN[i] {
					t.Fatalf("%s[%d] on %s: %d at 1 lane, %d merged across 4 lanes", row, i, sw, m1[i], mN[i])
				}
			}
		}
	}
}
