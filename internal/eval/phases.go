package eval

import (
	"context"
	"fmt"
	"strings"
	"time"

	"lyra/internal/asic"
	"lyra/internal/core"
	"lyra/internal/topo"
)

// PhasePoint is one end-to-end compile with its per-phase breakdown, the
// unit of the BENCH_compile.json artifact the CI benchmark smoke job
// publishes. Durations are milliseconds so the JSON is directly plottable.
type PhasePoint struct {
	Workload    string             `json:"workload"`
	Chip        string             `json:"chip"`
	K           int                `json:"k"`
	Parallelism int                `json:"parallelism"`
	CompileMs   float64            `json:"compile_ms"`
	SolveMs     float64            `json:"solve_ms"`
	PhasesMs    map[string]float64 `json:"phases_ms"`
	// SMTInstances counts the independent SMT instances the placement
	// split into (1 = monolithic solve).
	SMTInstances int   `json:"smt_instances"`
	Decisions    int64 `json:"decisions"`
	Propagations int64 `json:"propagations"`
	Conflicts    int64 `json:"conflicts"`
	Restarts     int64 `json:"restarts"`
}

// PhaseBreakdown compiles the Figure 10 workloads (MULTI-SW load balancer
// and PER-SW NetCache) end to end on Tofino fat-tree pods of the given
// sizes, through the full core pipeline, and reports each compile's phase
// timings and solver counters. parallelism <= 0 uses all CPUs.
func PhaseBreakdown(ks []int, parallelism int) ([]PhasePoint, error) {
	if len(ks) == 0 {
		ks = []int{4, 8}
	}
	ncSrc, err := LoadProgram("netcache")
	if err != nil {
		return nil, err
	}
	chainSrc, err := LoadProgram("composition")
	if err != nil {
		return nil, err
	}
	fixed := func(s string) func(*topo.Network) string {
		return func(*topo.Network) string { return s }
	}
	workloads := []struct {
		name, src string
		scope     func(*topo.Network) string
	}{
		{"lb-multi", lbSource(100_000, 10_000), fixed("loadbalancer: [ ToR*,Agg* | MULTI-SW | (Agg*->ToR*) ]")},
		{"netcache-per", ncSrc, fixed("netcache: [ ToR*,Agg* | PER-SW | - ]")},
		// chain-disjoint spreads the five-algorithm service chain over
		// disjoint switch groups, so the placement splits into independent
		// SMT instances (smt_instances > 1) and the solve phase itself runs
		// on the worker pool.
		{"chain-disjoint", chainSrc, chainScopes},
	}
	var out []PhasePoint
	for _, k := range ks {
		net := topo.FatTreePod(k, asic.Tofino32Q)
		for _, w := range workloads {
			res, err := core.CompileContext(context.Background(), core.Request{
				Source:      w.src,
				ScopeSpec:   w.scope(net),
				Network:     net,
				Parallelism: parallelism,
			})
			if err != nil {
				return nil, fmt.Errorf("phases %s k=%d: %w", w.name, k, err)
			}
			p := PhasePoint{
				Workload:     w.name,
				Chip:         "Tofino",
				K:            k,
				Parallelism:  parallelism,
				CompileMs:    ms(res.CompileTime),
				SolveMs:      ms(res.SolveTime),
				PhasesMs:     map[string]float64{},
				SMTInstances: res.SolveInstances,
				Decisions:    res.SolverStats.Decisions,
				Propagations: res.SolverStats.Propagations,
				Conflicts:    res.SolverStats.Conflicts,
				Restarts:     res.SolverStats.Restarts,
			}
			for _, pt := range res.Phases {
				p.PhasesMs[string(pt.Phase)] += ms(pt.Duration)
			}
			out = append(out, p)
		}
	}
	return out, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// chainScopes assigns the network's switches round-robin to the five
// service-chain algorithms, producing disjoint PER-SW scopes. When the
// network has fewer switches than algorithms, the tail wraps around and
// shares switches, fusing those components.
func chainScopes(net *topo.Network) string {
	algs := []string{"classifier", "firewall", "gateway", "chain_lb", "scheduler"}
	names := net.Names()
	groups := make([][]string, len(algs))
	for i, sw := range names {
		groups[i%len(algs)] = append(groups[i%len(algs)], sw)
	}
	for i := len(names); i < len(algs); i++ {
		groups[i] = append(groups[i], names[i%len(names)])
	}
	var b strings.Builder
	for i, a := range algs {
		fmt.Fprintf(&b, "%s: [ %s | PER-SW | - ]\n", a, strings.Join(groups[i], ","))
	}
	return b.String()
}

// FormatPhases renders the breakdown as a table, one row per compile with
// the six phases as columns.
func FormatPhases(points []PhasePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %4s %4s %9s %9s %9s %9s %9s %9s %9s %5s\n",
		"Workload", "k", "par", "compile", "parse", "scope", "encode", "solve", "codegen", "verify", "inst")
	fmt.Fprintln(&b, strings.Repeat("-", 104))
	for _, p := range points {
		fmt.Fprintf(&b, "%-14s %4d %4d %8.1fms %8.1fms %8.1fms %8.1fms %8.1fms %8.1fms %8.1fms %5d\n",
			p.Workload, p.K, p.Parallelism, p.CompileMs,
			p.PhasesMs["parse"], p.PhasesMs["scope"], p.PhasesMs["encode"],
			p.PhasesMs["solve"], p.PhasesMs["codegen"], p.PhasesMs["verify"],
			p.SMTInstances)
	}
	return b.String()
}
