package eval

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"lyra/internal/asic"
	"lyra/internal/dataplane"
	"lyra/internal/topo"
)

// TrafficPoint is one traffic-replay throughput measurement: the stateful
// L4 load balancer deployed on a fat-tree pod, with a synthetic flow
// replayed along one ToR->Agg->ToR path through either the tree-walking
// interpreter or the bytecode engine.
type TrafficPoint struct {
	Workload string `json:"workload"`
	K        int    `json:"k"`
	// Engine is "interpreter" or "engine".
	Engine string `json:"engine"`
	// Batch is the packets submitted per replay call (the interpreter has
	// no batch API; it always runs packet-at-a-time with Batch recorded as
	// the chunk the wall clock was amortized over).
	Batch   int `json:"batch"`
	Workers int `json:"workers"`
	Packets int `json:"packets"`
	// PktsPerSec is the replay throughput; AllocsPerPkt the steady-state
	// heap allocations per packet (0 for the engine by construction).
	PktsPerSec   float64 `json:"pkts_per_sec"`
	AllocsPerPkt float64 `json:"allocs_per_pkt"`
	NsPerPkt     float64 `json:"ns_per_pkt"`
	// Speedup is PktsPerSec over the interpreter baseline at the same k
	// (1.0 for the baseline row itself).
	Speedup float64 `json:"speedup"`
}

// trafficDeployment compiles the LB workload onto a fat-tree pod and
// deploys it with populated VIP and connection tables, returning the
// deployment and one multi-hop flow path.
func trafficDeployment(k int) (*dataplane.Deployment, []string, error) {
	net := topo.FatTreePod(k, asic.Tofino32Q)
	_, plan, err := compileScoped(lbSource(4096, 1024), "loadbalancer: [ ToR*,Agg* | MULTI-SW | (Agg*->ToR*) ]", net)
	if err != nil {
		return nil, nil, err
	}
	tables := dataplane.NewTables()
	rng := rand.New(rand.NewSource(1))
	for vip := uint64(0); vip < 64; vip++ {
		tables.Set("vip_table", vip, 0xC0A80000+vip)
	}
	for i := 0; i < 512; i++ {
		tables.Set("conn_table", uint64(rng.Uint32()), 0x0A000000+uint64(i))
	}
	dep, err := dataplane.NewDeployment(plan, tables)
	if err != nil {
		return nil, nil, err
	}
	paths := plan.Input.Scopes["loadbalancer"].Paths
	if len(paths) == 0 {
		return nil, nil, fmt.Errorf("no flow paths for loadbalancer on k=%d pod", k)
	}
	// Prefer the longest path (most hops per packet).
	best := paths[0]
	for _, p := range paths {
		if len(p) > len(best) {
			best = p
		}
	}
	return dep, best, nil
}

// trafficPackets synthesizes n random LB flows.
func trafficPackets(n int) []*dataplane.Packet {
	rng := rand.New(rand.NewSource(2))
	pkts := make([]*dataplane.Packet, n)
	for i := range pkts {
		p := dataplane.NewPacket()
		p.Valid["ipv4"] = true
		p.Valid["tcp"] = true
		p.Fields["ipv4.srcAddr"] = uint64(rng.Uint32())
		p.Fields["ipv4.dstAddr"] = uint64(rng.Intn(64))
		p.Fields["ipv4.protocol"] = 6
		p.Fields["tcp.srcPort"] = uint64(rng.Intn(1 << 16))
		p.Fields["tcp.dstPort"] = 80
		pkts[i] = p
	}
	return pkts
}

// allocsDuring reports total mallocs during fn.
func allocsDuring(fn func()) uint64 {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// TrafficReplay measures interpreter-vs-engine packet replay throughput on
// a fat-tree pod of size k: the interpreter baseline, then the engine at
// batch sizes 1, 64, and 1024, at 1 worker and at full parallelism.
// nPackets <= 0 defaults to 200k packets per measurement.
func TrafficReplay(k, nPackets, maxWorkers int) ([]TrafficPoint, error) {
	if k <= 0 {
		k = 8
	}
	if nPackets <= 0 {
		nPackets = 200_000
	}
	if maxWorkers <= 0 {
		maxWorkers = runtime.GOMAXPROCS(0)
	}
	dep, path, err := trafficDeployment(k)
	if err != nil {
		return nil, err
	}
	eng, err := dep.Engine()
	if err != nil {
		return nil, err
	}
	src := trafficPackets(4096)
	ctx := &dataplane.Context{SwitchID: 1, IngressTS: 100, EgressTS: 200, QueueLen: 2}

	var points []TrafficPoint

	// Interpreter baseline: packet-at-a-time RunPath.
	{
		warm := src[0]
		if _, err := dep.RunPath(path, ctx, warm); err != nil {
			return nil, err
		}
		var runErr error
		start := time.Now()
		allocs := allocsDuring(func() {
			for i := 0; i < nPackets; i++ {
				if _, err := dep.RunPath(path, ctx, src[i%len(src)]); err != nil {
					runErr = err
					return
				}
			}
		})
		if runErr != nil {
			return nil, runErr
		}
		wall := time.Since(start)
		points = append(points, TrafficPoint{
			Workload: "lb-multi", K: k, Engine: "interpreter", Batch: 1, Workers: 1,
			Packets: nPackets, PktsPerSec: float64(nPackets) / wall.Seconds(),
			AllocsPerPkt: float64(allocs) / float64(nPackets),
			NsPerPkt:     float64(wall.Nanoseconds()) / float64(nPackets),
			Speedup:      1,
		})
	}
	base := points[0].PktsPerSec

	// Engine: replay the same stream at each (batch, workers) point.
	// Templates are flattened once; the replay loop refreshes each batch
	// from its template (CopyFrom is allocation-free) so every measurement
	// processes identical inputs.
	workerSet := []int{1}
	if maxWorkers > 1 {
		workerSet = append(workerSet, maxWorkers)
	}
	for _, batch := range []int{1, 64, 1024} {
		for _, workers := range workerSet {
			if workers > 1 && batch < 64 {
				continue // sharding a 1-packet batch measures only overhead
			}
			tmpl := make([]*dataplane.FlatPacket, batch)
			work := make([]*dataplane.FlatPacket, batch)
			for i := range tmpl {
				tmpl[i] = eng.Flatten(src[i%len(src)])
				work[i] = eng.NewFlatPacket()
			}
			rounds := (nPackets + batch - 1) / batch
			replay := func(n int) error {
				for r := 0; r < n; r++ {
					for j := range work {
						work[j].CopyFrom(tmpl[j])
					}
					if err := dep.ReplayTraffic(path, ctx, work, workers); err != nil {
						return err
					}
				}
				return nil
			}
			if err := replay(2); err != nil { // warm lanes and worker pool
				return nil, err
			}
			var runErr error
			start := time.Now()
			allocs := allocsDuring(func() { runErr = replay(rounds) })
			if runErr != nil {
				return nil, runErr
			}
			wall := time.Since(start)
			total := rounds * batch
			pps := float64(total) / wall.Seconds()
			points = append(points, TrafficPoint{
				Workload: "lb-multi", K: k, Engine: "engine", Batch: batch, Workers: workers,
				Packets: total, PktsPerSec: pps,
				AllocsPerPkt: float64(allocs) / float64(total),
				NsPerPkt:     float64(wall.Nanoseconds()) / float64(total),
				Speedup:      pps / base,
			})
		}
	}
	return points, nil
}

// FormatTraffic renders the replay comparison.
func FormatTraffic(points []TrafficPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %4s %-12s %6s %8s %12s %10s %11s %8s\n",
		"Workload", "k", "engine", "batch", "workers", "pkts/s", "ns/pkt", "allocs/pkt", "speedup")
	fmt.Fprintln(&b, strings.Repeat("-", 90))
	for _, p := range points {
		fmt.Fprintf(&b, "%-10s %4d %-12s %6d %8d %12.0f %10.1f %11.2f %7.1fx\n",
			p.Workload, p.K, p.Engine, p.Batch, p.Workers,
			p.PktsPerSec, p.NsPerPkt, p.AllocsPerPkt, p.Speedup)
	}
	return b.String()
}
