package eval

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"lyra/internal/asic"
	"lyra/internal/dataplane"
	"lyra/internal/topo"
)

// TrafficPoint is one traffic-replay throughput measurement: the stateful
// L4 load balancer deployed on a fat-tree pod, with a synthetic flow
// replayed along one ToR->Agg->ToR path through one of the three
// execution tiers (interpreter, bytecode engine, compiled backend).
type TrafficPoint struct {
	Workload string `json:"workload"`
	K        int    `json:"k"`
	// Engine is the execution tier: "interpreter", "engine", or "compiled".
	Engine string `json:"engine"`
	// Batch is the packets submitted per replay call (the interpreter has
	// no batch API; it always runs packet-at-a-time with Batch recorded as
	// the chunk the wall clock was amortized over).
	Batch   int `json:"batch"`
	Workers int `json:"workers"`
	Packets int `json:"packets"`
	// PktsPerSec is the replay throughput; AllocsPerPkt the steady-state
	// heap allocations per packet (0 for the engine by construction).
	PktsPerSec   float64 `json:"pkts_per_sec"`
	AllocsPerPkt float64 `json:"allocs_per_pkt"`
	NsPerPkt     float64 `json:"ns_per_pkt"`
	// Speedup is PktsPerSec over the interpreter baseline at the same k
	// (1.0 for the baseline row itself).
	Speedup float64 `json:"speedup"`
}

// trafficDeployment compiles the LB workload onto a fat-tree pod and
// deploys it with populated VIP and connection tables, returning the
// deployment and one multi-hop flow path.
func trafficDeployment(k int) (*dataplane.Deployment, []string, error) {
	net := topo.FatTreePod(k, asic.Tofino32Q)
	_, plan, err := compileScoped(lbSource(4096, 1024), "loadbalancer: [ ToR*,Agg* | MULTI-SW | (Agg*->ToR*) ]", net)
	if err != nil {
		return nil, nil, err
	}
	tables := dataplane.NewTables()
	rng := rand.New(rand.NewSource(1))
	for vip := uint64(0); vip < 64; vip++ {
		tables.Set("vip_table", vip, 0xC0A80000+vip)
	}
	for i := 0; i < 512; i++ {
		tables.Set("conn_table", uint64(rng.Uint32()), 0x0A000000+uint64(i))
	}
	dep, err := dataplane.NewDeployment(plan, tables)
	if err != nil {
		return nil, nil, err
	}
	paths := plan.Input.Scopes["loadbalancer"].Paths
	if len(paths) == 0 {
		return nil, nil, fmt.Errorf("no flow paths for loadbalancer on k=%d pod", k)
	}
	// Prefer the longest path (most hops per packet).
	best := paths[0]
	for _, p := range paths {
		if len(p) > len(best) {
			best = p
		}
	}
	return dep, best, nil
}

// trafficPackets synthesizes n random LB flows.
func trafficPackets(n int) []*dataplane.Packet {
	rng := rand.New(rand.NewSource(2))
	pkts := make([]*dataplane.Packet, n)
	for i := range pkts {
		p := dataplane.NewPacket()
		p.Valid["ipv4"] = true
		p.Valid["tcp"] = true
		p.Fields["ipv4.srcAddr"] = uint64(rng.Uint32())
		p.Fields["ipv4.dstAddr"] = uint64(rng.Intn(64))
		p.Fields["ipv4.protocol"] = 6
		p.Fields["tcp.srcPort"] = uint64(rng.Intn(1 << 16))
		p.Fields["tcp.dstPort"] = 80
		pkts[i] = p
	}
	return pkts
}

// allocsDuring reports total mallocs during fn.
func allocsDuring(fn func()) uint64 {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// scalingWorkers returns the worker counts for the scaling curve: powers
// of two up to max, with max itself always included.
func scalingWorkers(max int) []int {
	ws := []int{1}
	for w := 2; w < max; w *= 2 {
		ws = append(ws, w)
	}
	if max > 1 {
		ws = append(ws, max)
	}
	return ws
}

// TrafficReplay measures packet replay throughput across the execution
// tiers on a fat-tree pod of size k: the interpreter baseline, then the
// bytecode engine and the compiled backend at batch sizes 1, 64, and
// 1024. Small batches run at 1 worker and full parallelism; the 1024
// batch sweeps a power-of-two worker scaling curve up to maxWorkers.
// nPackets <= 0 defaults to 200k packets per measurement.
func TrafficReplay(k, nPackets, maxWorkers int) ([]TrafficPoint, error) {
	if k <= 0 {
		k = 8
	}
	if nPackets <= 0 {
		nPackets = 200_000
	}
	if maxWorkers <= 0 {
		maxWorkers = runtime.GOMAXPROCS(0)
	}
	dep, path, err := trafficDeployment(k)
	if err != nil {
		return nil, err
	}
	eng, err := dep.Engine()
	if err != nil {
		return nil, err
	}
	src := trafficPackets(4096)
	ctx := &dataplane.Context{SwitchID: 1, IngressTS: 100, EgressTS: 200, QueueLen: 2}

	var points []TrafficPoint

	// Interpreter baseline: packet-at-a-time RunPath.
	{
		warm := src[0]
		if _, err := dep.RunPath(path, ctx, warm); err != nil {
			return nil, err
		}
		var runErr error
		start := time.Now()
		allocs := allocsDuring(func() {
			for i := 0; i < nPackets; i++ {
				if _, err := dep.RunPath(path, ctx, src[i%len(src)]); err != nil {
					runErr = err
					return
				}
			}
		})
		if runErr != nil {
			return nil, runErr
		}
		wall := time.Since(start)
		points = append(points, TrafficPoint{
			Workload: "lb-multi", K: k, Engine: "interpreter", Batch: 1, Workers: 1,
			Packets: nPackets, PktsPerSec: float64(nPackets) / wall.Seconds(),
			AllocsPerPkt: float64(allocs) / float64(nPackets),
			NsPerPkt:     float64(wall.Nanoseconds()) / float64(nPackets),
			Speedup:      1,
		})
	}
	base := points[0].PktsPerSec

	// Flat tiers: replay the same stream at each (tier, batch, workers)
	// point. Templates are flattened once (both tiers share the
	// deployment's engine layout); the replay loop refreshes each batch
	// from its template (CopyFrom is allocation-free) so every measurement
	// processes identical inputs. The engine and compiled measurements for
	// a point run back to back, each as best-of-three trials, so a slow
	// drift in machine load lands on both sides of the ratio instead of
	// one.
	smallSet := []int{1}
	if maxWorkers > 1 {
		smallSet = append(smallSet, maxWorkers)
	}
	curveSet := scalingWorkers(maxWorkers)
	tiers := []dataplane.ExecutorTier{dataplane.TierEngine, dataplane.TierCompiled}
	execs := make([]dataplane.Executor, len(tiers))
	for i, tier := range tiers {
		x, err := dep.ExecutorFor(tier)
		if err != nil {
			return nil, err
		}
		execs[i] = x
	}
	const trials = 5
	for _, batch := range []int{1, 64, 1024} {
		workerSet := smallSet
		if batch == 1024 {
			workerSet = curveSet // the scaling curve rides the big batch
		}
		for _, workers := range workerSet {
			if workers > 1 && batch < 64 {
				continue // sharding a 1-packet batch measures only overhead
			}
			tmpl := make([]*dataplane.FlatPacket, batch)
			work := make([]*dataplane.FlatPacket, batch)
			for i := range tmpl {
				tmpl[i] = eng.Flatten(src[i%len(src)])
				work[i] = eng.NewFlatPacket()
			}
			rounds := (nPackets + batch - 1) / batch
			for ti, x := range execs {
				// Only the RunBatch calls are on the clock: the template
				// refresh between rounds is harness work, not tier
				// throughput, and timing it would dilute every tier by the
				// same memcpy cost.
				var busy time.Duration
				replay := func(n int, timed bool) error {
					for r := 0; r < n; r++ {
						for j := range work {
							work[j].CopyFrom(tmpl[j])
						}
						start := time.Now()
						err := x.RunBatch(path, ctx, work, workers)
						if timed {
							busy += time.Since(start)
						}
						if err != nil {
							return err
						}
					}
					return nil
				}
				if err := replay(2, false); err != nil { // warm lanes and worker pool
					return nil, err
				}
				best := time.Duration(0)
				var allocs uint64
				for trial := 0; trial < trials; trial++ {
					busy = 0
					var runErr error
					a := allocsDuring(func() { runErr = replay(rounds, true) })
					if runErr != nil {
						return nil, runErr
					}
					if trial == 0 || busy < best {
						best, allocs = busy, a
					}
				}
				total := rounds * batch
				pps := float64(total) / best.Seconds()
				points = append(points, TrafficPoint{
					Workload: "lb-multi", K: k, Engine: tiers[ti].String(), Batch: batch, Workers: workers,
					Packets: total, PktsPerSec: pps,
					AllocsPerPkt: float64(allocs) / float64(total),
					NsPerPkt:     float64(best.Nanoseconds()) / float64(total),
					Speedup:      pps / base,
				})
			}
		}
	}
	return points, nil
}

// CheckTrafficScaling validates the scaling expectations on a traffic
// result, returning human-readable violations (empty = clean). Within
// each flat tier, adding workers at the largest batch must not regress
// throughput below slack x the previous point on the curve, and at every
// measurement point the compiled backend must keep up with the bytecode
// engine (again within slack). Slack < 1 absorbs scheduler noise on
// shared CI runners; the headline numbers come from quiet machines.
func CheckTrafficScaling(points []TrafficPoint, slack float64) []string {
	var violations []string
	maxBatch := 0
	for _, p := range points {
		if p.Batch > maxBatch {
			maxBatch = p.Batch
		}
	}
	engineAt := map[[2]int]float64{}
	for _, p := range points {
		if p.Engine == "engine" {
			engineAt[[2]int{p.Batch, p.Workers}] = p.PktsPerSec
		}
	}
	prev := map[string]TrafficPoint{}
	for _, p := range points {
		if p.Engine == "interpreter" {
			continue
		}
		if p.Batch == maxBatch {
			if q, ok := prev[p.Engine]; ok && p.PktsPerSec < slack*q.PktsPerSec {
				violations = append(violations, fmt.Sprintf(
					"%s batch=%d: %d workers ran at %.0f pkts/s, below %.2fx the %.0f pkts/s of %d workers",
					p.Engine, p.Batch, p.Workers, p.PktsPerSec, slack, q.PktsPerSec, q.Workers))
			}
			prev[p.Engine] = p
		}
		if p.Engine == "compiled" {
			if eng, ok := engineAt[[2]int{p.Batch, p.Workers}]; ok && p.PktsPerSec < slack*eng {
				violations = append(violations, fmt.Sprintf(
					"compiled batch=%d workers=%d ran at %.0f pkts/s, below %.2fx the engine's %.0f pkts/s",
					p.Batch, p.Workers, p.PktsPerSec, slack, eng))
			}
		}
	}
	return violations
}

// FormatTraffic renders the replay comparison.
func FormatTraffic(points []TrafficPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %4s %-12s %6s %8s %12s %10s %11s %8s\n",
		"Workload", "k", "engine", "batch", "workers", "pkts/s", "ns/pkt", "allocs/pkt", "speedup")
	fmt.Fprintln(&b, strings.Repeat("-", 90))
	for _, p := range points {
		fmt.Fprintf(&b, "%-10s %4d %-12s %6d %8d %12.0f %10.1f %11.2f %7.1fx\n",
			p.Workload, p.K, p.Engine, p.Batch, p.Workers,
			p.PktsPerSec, p.NsPerPkt, p.AllocsPerPkt, p.Speedup)
	}
	return b.String()
}
