package eval

import (
	"fmt"
	"strings"
	"time"

	"lyra/internal/asic"
	"lyra/internal/encode"
	"lyra/internal/frontend"
	"lyra/internal/lang/checker"
	"lyra/internal/lang/parser"
	"lyra/internal/scope"
	"lyra/internal/topo"
)

// LadderPoint is one fallback-ladder benchmark measurement: the same
// over-constrained compile (first attempt exhausts its conflict budget, the
// escalated retry succeeds) solved incrementally — one encoding, ladder
// rungs as assumption sets on a persistent solver — versus the historical
// re-encode-per-attempt baseline.
type LadderPoint struct {
	Workload string `json:"workload"`
	K        int    `json:"k"`
	// Conflicts is the calibrated conflict count of an unconstrained solve;
	// the benchmark sets the first attempt's budget to Conflicts-1 so it
	// fails after doing nearly all the search work.
	Conflicts int64 `json:"conflicts"`
	Attempts  int   `json:"attempts"`
	// IncrementalMs and ReencodeMs are best-of-Iters wall times for the
	// two-attempt ladder in each mode.
	IncrementalMs float64 `json:"incremental_ms"`
	ReencodeMs    float64 `json:"reencode_ms"`
	Speedup       float64 `json:"speedup"`
	// ClausesReused counts learnt clauses the escalated attempt inherited
	// from the failed one (always 0 in the re-encode baseline).
	ClausesReused int64 `json:"clauses_reused"`
	Iters         int   `json:"iters"`
}

// ladderInput front-ends the load-balancer workload onto a Tofino fat-tree
// pod and returns the encoder input.
func ladderInput(k int, conn, vip int) (*encode.Input, error) {
	net := topo.FatTreePod(k, asic.Tofino32Q)
	src := lbSource(conn, vip)
	prog, err := parser.Parse("lb.lyra", []byte(src))
	if err != nil {
		return nil, err
	}
	if err := checker.Check(prog); err != nil {
		return nil, err
	}
	irp, err := frontend.Preprocess(prog)
	if err != nil {
		return nil, err
	}
	frontend.Analyze(irp)
	spec, err := scope.Parse("loadbalancer: [ ToR*,Agg* | MULTI-SW | (Agg*->ToR*) ]")
	if err != nil {
		return nil, err
	}
	scopes, err := spec.Resolve(net)
	if err != nil {
		return nil, err
	}
	return &encode.Input{IR: irp, Net: net, Scopes: scopes}, nil
}

// LadderComparison measures the incremental fallback ladder against the
// re-encode baseline on a fat-tree pod of size k. The conn_table size is
// chosen so the placement needs theory conflicts to shard the extern; the
// first attempt's conflict budget is calibrated to Conflicts-1, forcing the
// "first attempt fails, escalated attempt succeeds" pattern. iters <= 0
// defaults to 11 measurement repetitions per mode.
func LadderComparison(k, iters int) (*LadderPoint, error) {
	if k <= 0 {
		k = 16
	}
	if iters <= 0 {
		iters = 11
	}
	in, err := ladderInput(k, 5_500_000, 1_000_000)
	if err != nil {
		return nil, err
	}
	// Calibrate: how many conflicts does an unconstrained solve need?
	cal, err := encode.Solve(in, encode.DefaultOptions())
	if err != nil {
		return nil, fmt.Errorf("calibration solve: %w", err)
	}
	conflicts := cal.Stats.Conflicts
	if conflicts < 2 {
		return nil, fmt.Errorf("workload needs %d conflicts; too easy to exercise the ladder", conflicts)
	}

	pt := &LadderPoint{Workload: "lb-multi", K: k, Conflicts: conflicts, Iters: iters}
	for _, reencode := range []bool{false, true} {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < iters; i++ {
			opts := encode.DefaultOptions()
			opts.ConflictBudget = conflicts - 1
			opts.ReencodeEachAttempt = reencode
			start := time.Now()
			plan, err := encode.Solve(in, opts)
			if err != nil {
				return nil, fmt.Errorf("reencode=%v: %w", reencode, err)
			}
			wall := time.Since(start)
			if n := len(plan.Diagnostics.Attempts); n != 2 {
				return nil, fmt.Errorf("reencode=%v: %d attempts, want the 2-rung ladder (%s)",
					reencode, n, plan.Diagnostics.Summary())
			}
			if wall < best {
				best = wall
			}
			if !reencode {
				pt.Attempts = len(plan.Diagnostics.Attempts)
				pt.ClausesReused = plan.Stats.ClausesReused
			}
		}
		if reencode {
			pt.ReencodeMs = ms(best)
		} else {
			pt.IncrementalMs = ms(best)
		}
	}
	pt.Speedup = pt.ReencodeMs / pt.IncrementalMs
	return pt, nil
}

// FormatLadder renders the comparison.
func FormatLadder(pt *LadderPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %4s %9s %8s %12s %12s %8s %7s\n",
		"Workload", "k", "conflicts", "attempts", "incremental", "re-encode", "speedup", "reused")
	fmt.Fprintln(&b, strings.Repeat("-", 78))
	fmt.Fprintf(&b, "%-10s %4d %9d %8d %10.2fms %10.2fms %7.2fx %7d\n",
		pt.Workload, pt.K, pt.Conflicts, pt.Attempts,
		pt.IncrementalMs, pt.ReencodeMs, pt.Speedup, pt.ClausesReused)
	return b.String()
}
