package eval

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"lyra/internal/asic"
	"lyra/internal/core"
	"lyra/internal/faults"
	"lyra/internal/topo"
)

// The scale experiment (E17): compile the stateful load balancer over a
// k-pod slice of a k-ary fat tree — k*k pod switches plus a core layer —
// and measure the three datacenter-scale mechanisms together:
//
//   - lazy path enumeration (scopes never materialize their flow paths;
//     the encoder streams them, and the plan reports the peak number of
//     unique candidate-hop sequences it ever held),
//   - symmetry-aware component dedup (the k pods are isomorphic, so one
//     pod is solved and k-1 placements are replayed through the switch
//     bijection; the same compile runs with dedup disabled as the
//     baseline, and the two plans must be fingerprint-identical),
//   - the churn loop (a seeded storm of switch/link failures, each
//     recompiled incrementally through the solver cache).

// ScaleParams pins the knobs one scale run used.
type ScaleParams struct {
	Ks          []int `json:"ks"`
	ChurnEvents int   `json:"churn_events"`
	Seed        int64 `json:"seed"`
	ConnSize    int   `json:"conn_size"`
	VipSize     int   `json:"vip_size"`
	Portfolio   int   `json:"portfolio,omitempty"`
	// Repeats is how many times each timed compile runs; the point records
	// the fastest. Compilation is deterministic — every repeat produces the
	// byte-identical plan — so min-of-N measures the algorithm, not
	// whichever repetition a GC cycle or a noisy neighbor landed on.
	Repeats int `json:"repeats"`
}

// WithDefaults fills unset knobs with the experiment's standard shape.
func (p ScaleParams) WithDefaults() ScaleParams {
	if len(p.Ks) == 0 {
		p.Ks = []int{8, 16}
	}
	if p.ChurnEvents <= 0 {
		p.ChurnEvents = 20
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.ConnSize <= 0 {
		// Same calibration as the ladder experiment: big enough that the
		// conn table must shard across each Agg->ToR path, so every
		// component solve does real theory work and the per-pod solve cost
		// (the thing dedup removes) dominates the pipeline.
		p.ConnSize = 5_500_000
	}
	if p.VipSize <= 0 {
		p.VipSize = 1_000_000
	}
	if p.Repeats <= 0 {
		p.Repeats = 3
	}
	return p
}

// ScalePoint is one k of the sweep.
type ScalePoint struct {
	K        int `json:"k"`
	Pods     int `json:"pods"`
	Switches int `json:"switches"`

	// Paths enumeration: total flow paths streamed across all components
	// versus the peak number of unique candidate-hop sequences any single
	// component encoder held — the bound that replaces materialize-all.
	PathsEnumerated int64 `json:"paths_enumerated"`
	PeakPathsHeld   int64 `json:"peak_paths_held"`

	// Symmetry accounting for the dedup compile: Components is the number
	// of independent placement problems, Classes how many were actually
	// solved, Replayed how many were renamed from an isomorphic twin.
	Components   int     `json:"components"`
	Classes      int     `json:"classes"`
	Replayed     int     `json:"replayed"`
	DedupHitRate float64 `json:"dedup_hit_rate"`

	// Compile latency with and without dedup, same process, same inputs;
	// the plans are asserted fingerprint-identical before either number is
	// recorded.
	CompileMS        float64 `json:"compile_ms"`
	NoDedupCompileMS float64 `json:"no_dedup_compile_ms"`
	Speedup          float64 `json:"speedup"`

	// Encoded problem size (solver variables/clauses summed over solved
	// components) and allocation volume of the dedup compile.
	EncodedVars    int64   `json:"encoded_vars"`
	EncodedClauses int64   `json:"encoded_clauses"`
	AllocMB        float64 `json:"alloc_mb"`
	HeapMB         float64 `json:"heap_mb"`

	// Churn loop: seeded switch/link failures, each recompiled against a
	// fresh degraded clone of the pristine network.
	ChurnEvents   int     `json:"churn_events"`
	RecompileP50  float64 `json:"recompile_p50_ms"`
	RecompileMax  float64 `json:"recompile_max_ms"`
	CacheHits     int64   `json:"cache_hits"`
	CacheEvicted  int64   `json:"cache_evictions"`
	SolverSolves  int64   `json:"solver_solves"`
	SolverEncodes int64   `json:"solver_encodes"`
}

// ScaleRun is one provenance-stamped sweep, appended to the
// {"scale": [...]} key of BENCH_compile.json.
type ScaleRun struct {
	GitSHA    string       `json:"git_sha"`
	Timestamp string       `json:"timestamp"`
	Params    ScaleParams  `json:"params"`
	Points    []ScalePoint `json:"points"`
}

// Stamp fills the run's provenance fields in place.
func (r *ScaleRun) Stamp() {
	r.GitSHA = GitSHA()
	r.Timestamp = time.Now().UTC().Format(time.RFC3339)
}

// scaleNet builds the k-pod fat-tree slice with a uniform Tofino model —
// the maximally symmetric shape, where every pod is a rename of pod 1.
func scaleNet(k int) *topo.Network {
	return topo.MultiPodFatTree(k, k, func(layer string, idx int) *asic.Model {
		return asic.Tofino32Q
	})
}

const scaleScope = `loadbalancer: [ ToR*,Agg* | MULTI-SW | (Agg*->ToR*) ]`

// RunScale executes the sweep. Every k compiles twice — dedup on and off —
// and errors out if the two plans are not fingerprint-identical, so a
// recorded speedup can never come from a divergent plan.
func RunScale(params ScaleParams) ([]ScalePoint, error) {
	params = params.WithDefaults()
	ctx := context.Background()
	src := lbSource(params.ConnSize, params.VipSize)
	var points []ScalePoint
	for _, k := range params.Ks {
		if k < 2 || k%2 != 0 {
			return nil, fmt.Errorf("scale: k must be even and >= 2, got %d", k)
		}
		net := scaleNet(k)
		req := core.Request{
			Source: src, SourceName: "scale.lyra", ScopeSpec: scaleScope,
			Network: net, SkipVerify: true, LazyPaths: true,
			Portfolio: params.Portfolio,
		}

		// Baseline: dedup off. Same process, same inputs, timed first so
		// any warm-up (code paging, allocator growth) favors the baseline.
		// Each timed compile starts from a collected heap: without the
		// explicit GC, garbage from the previous point's churn loop (or
		// from the baseline compile itself) is paid for inside whichever
		// compile happens to trip the next collection, skewing the ratio
		// either way by tens of percent at large k.
		baseReq := req
		baseReq.NoSymmetryDedup = true
		var baseFPs map[string]string
		noDedupMS := 0.0
		for r := 0; r < params.Repeats; r++ {
			runtime.GC()
			start := time.Now()
			baseRes, err := core.CompileContext(ctx, baseReq)
			if err != nil {
				return nil, fmt.Errorf("scale k=%d no-dedup compile: %w", k, err)
			}
			if ms := float64(time.Since(start).Microseconds()) / 1000; r == 0 || ms < noDedupMS {
				noDedupMS = ms
			}
			// Only the fingerprints survive to the equivalence check;
			// dropping the rest of the baseline result (thousands of
			// rendered artifacts at k=64) between repeats and before the
			// timed dedup compile keeps their heaps honest.
			baseFPs = baseRes.Fingerprints
		}

		var res *core.Result
		var before, after runtime.MemStats
		dedupMS := 0.0
		for r := 0; r < params.Repeats; r++ {
			res = nil
			runtime.GC()
			var b runtime.MemStats
			runtime.ReadMemStats(&b)
			start := time.Now()
			rres, err := core.CompileContext(ctx, req)
			if err != nil {
				return nil, fmt.Errorf("scale k=%d compile: %w", k, err)
			}
			ms := float64(time.Since(start).Microseconds()) / 1000
			var a runtime.MemStats
			runtime.ReadMemStats(&a)
			res = rres
			if r == 0 || ms < dedupMS {
				dedupMS, before, after = ms, b, a
			}
		}

		if err := sameFingerprints(baseFPs, res.Fingerprints); err != nil {
			return nil, fmt.Errorf("scale k=%d: dedup plan diverged from baseline: %w", k, err)
		}

		plan := res.Plan
		comps := plan.Classes + plan.Replayed
		pt := ScalePoint{
			K: k, Pods: k, Switches: len(net.Switches),
			PathsEnumerated:  plan.PathsEnumerated,
			PeakPathsHeld:    plan.PeakPathsHeld,
			Components:       comps,
			Classes:          plan.Classes,
			Replayed:         plan.Replayed,
			CompileMS:        dedupMS,
			NoDedupCompileMS: noDedupMS,
			EncodedVars:      plan.EncodedVars,
			EncodedClauses:   plan.EncodedClauses,
			AllocMB:          float64(after.TotalAlloc-before.TotalAlloc) / 1e6,
			HeapMB:           float64(after.HeapAlloc) / 1e6,
			ChurnEvents:      params.ChurnEvents,
		}
		if comps > 0 {
			pt.DedupHitRate = float64(plan.Replayed) / float64(comps)
		}
		if dedupMS > 0 {
			pt.Speedup = noDedupMS / dedupMS
		}

		// Churn loop: each event degrades a fresh clone of the pristine
		// network and recompiles from the original result, the §6.3
		// failure-recovery pattern. The solver cache threads through, so
		// components outside the blast radius re-solve incrementally.
		rng := rand.New(rand.NewSource(params.Seed + int64(k)))
		half := k / 2
		var lat []float64
		for ev := 0; ev < params.ChurnEvents; ev++ {
			pod := 1 + rng.Intn(k)
			tor := 1 + rng.Intn(half)
			var event faults.Event
			if ev%2 == 0 {
				event = faults.SwitchDown(fmt.Sprintf("ToR%d_%d", pod, tor))
			} else {
				agg := 1 + rng.Intn(half)
				event = faults.LinkDown(
					fmt.Sprintf("ToR%d_%d", pod, tor),
					fmt.Sprintf("Agg%d_%d", pod, agg))
			}
			degraded := net.Clone()
			scen := faults.Scenario{Events: []faults.Event{event}}
			if err := scen.Apply(degraded); err != nil {
				return nil, fmt.Errorf("scale k=%d churn %d: %w", k, ev, err)
			}
			evStart := time.Now()
			if _, _, err := core.Recompile(ctx, res, req, degraded); err != nil {
				return nil, fmt.Errorf("scale k=%d churn %d (%s): %w", k, ev, event, err)
			}
			lat = append(lat, float64(time.Since(evStart).Microseconds())/1000)
		}
		if len(lat) > 0 {
			sort.Float64s(lat)
			pt.RecompileP50 = lat[len(lat)/2]
			pt.RecompileMax = lat[len(lat)-1]
		}
		if c := res.SolverCache; c != nil {
			pt.CacheHits = c.Hits()
			pt.CacheEvicted = c.Evictions()
		}
		pt.SolverSolves = res.SolverStats.SolveCalls
		pt.SolverEncodes = res.SolverStats.Encodes
		points = append(points, pt)
	}
	return points, nil
}

// sameFingerprints compares two per-switch fingerprint maps and names the
// first divergence.
func sameFingerprints(a, b map[string]string) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d vs %d programmed switches", len(a), len(b))
	}
	keys := make([]string, 0, len(a))
	for sw := range a {
		keys = append(keys, sw)
	}
	sort.Strings(keys)
	for _, sw := range keys {
		fb, ok := b[sw]
		if !ok {
			return fmt.Errorf("switch %s missing from second plan", sw)
		}
		if a[sw] != fb {
			return fmt.Errorf("switch %s: %s vs %s", sw, a[sw], fb)
		}
	}
	return nil
}

// CheckScale enforces the scaling contract on a sweep: symmetry dedup must
// be active (every multi-pod point replays at least one twin), lazy
// enumeration must bound the working set (the peak held is strictly below
// the total streamed), and the dedup compile must beat the no-dedup
// baseline by at least minSpeedup at every k >= 16 (smaller k is too quick
// for the ratio to be meaningful against timer noise). Returns the
// violations (empty = contract held).
func CheckScale(points []ScalePoint, minSpeedup float64) []string {
	var violations []string
	for _, pt := range points {
		if pt.Pods > 1 {
			if pt.Replayed == 0 {
				violations = append(violations,
					fmt.Sprintf("k=%d: symmetry dedup replayed nothing across %d components", pt.K, pt.Components))
			}
			if pt.PeakPathsHeld >= pt.PathsEnumerated {
				violations = append(violations,
					fmt.Sprintf("k=%d: peak paths held (%d) not below total enumerated (%d)", pt.K, pt.PeakPathsHeld, pt.PathsEnumerated))
			}
		}
		if pt.K >= 16 && minSpeedup > 0 && pt.Speedup < minSpeedup {
			violations = append(violations,
				fmt.Sprintf("k=%d: dedup speedup %.2fx below the %.1fx floor (%.1fms vs %.1fms)",
					pt.K, pt.Speedup, minSpeedup, pt.CompileMS, pt.NoDedupCompileMS))
		}
	}
	return violations
}

// FormatScale renders the sweep for the CLI: one summary line per k.
func FormatScale(points []ScalePoint) string {
	var b strings.Builder
	b.WriteString("   k  switches  compile(ms)  no-dedup(ms)  speedup  classes  peak-paths    recompile p50/max\n")
	for _, pt := range points {
		fmt.Fprintf(&b, "  %2d  %8d  %11.1f  %12.1f  %6.2fx  %3d/%-3d  %5d/%-6d  %8.1f/%.1fms\n",
			pt.K, pt.Switches, pt.CompileMS, pt.NoDedupCompileMS, pt.Speedup,
			pt.Classes, pt.Components, pt.PeakPathsHeld, pt.PathsEnumerated,
			pt.RecompileP50, pt.RecompileMax)
	}
	return b.String()
}

// AppendScaleRun appends a run to the {"scale": [...]} key of the compile
// artifact at path, creating the file if absent and preserving every other
// key verbatim — the scale entry is a log, not a snapshot.
func AppendScaleRun(path string, run ScaleRun) error {
	doc := map[string]json.RawMessage{}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("eval: %s exists but is not a JSON object: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	var runs []json.RawMessage
	if cur, ok := doc["scale"]; ok {
		if err := json.Unmarshal(cur, &runs); err != nil {
			return fmt.Errorf("eval: %s has a malformed scale key: %w", path, err)
		}
	}
	entry, err := json.Marshal(run)
	if err != nil {
		return err
	}
	runs = append(runs, entry)
	merged, err := json.Marshal(runs)
	if err != nil {
		return err
	}
	doc["scale"] = merged
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
