package eval

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"time"
)

// ServeParams pins the knobs a churn storm ran with, so a recorded run can
// be reproduced. The fields mirror churn.Config; they are restated here as
// plain data because eval must stay import-free of the serve stack (the
// root package's tests import eval, and serve imports the root package).
type ServeParams struct {
	Seed        int64  `json:"seed"`
	Events      int    `json:"events"`
	Clients     int    `json:"clients"`
	Sessions    int    `json:"sessions"`
	Duration    string `json:"duration"`
	PanicEvery  int    `json:"panic_every"`
	BurstEvery  int    `json:"burst_every"`
	BurstSize   int    `json:"burst_size"`
	MaxInflight int    `json:"max_inflight"`
	QueueDepth  int    `json:"queue_depth"`
}

// ServeRun is one recorded churn storm: provenance (git SHA + timestamp),
// the parameters, and the scores (a *churn.Result, held as any for the
// import direction above). BENCH_serve.json holds {"serve": [run, ...]} —
// runs append, never overwrite, so the artifact accumulates a history
// across revisions (schema in EXPERIMENTS.md).
type ServeRun struct {
	GitSHA    string      `json:"git_sha"`
	Timestamp string      `json:"timestamp"`
	Params    ServeParams `json:"params"`
	Result    any         `json:"result"`
}

// GitSHA names the current revision ("unknown" outside a git checkout).
func GitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// Stamp fills a run's provenance fields in place.
func (r *ServeRun) Stamp() {
	r.GitSHA = GitSHA()
	r.Timestamp = time.Now().UTC().Format(time.RFC3339)
}

// AppendServeRun appends a run to the {"serve": [...]} artifact at path,
// creating it if absent. Existing runs are preserved verbatim — the file is
// a log, not a snapshot.
func AppendServeRun(path string, run ServeRun) error {
	var artifact struct {
		Serve []json.RawMessage `json:"serve"`
	}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &artifact); err != nil {
			return fmt.Errorf("eval: %s exists but is not a serve artifact: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	entry, err := json.Marshal(run)
	if err != nil {
		return err
	}
	artifact.Serve = append(artifact.Serve, entry)
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
