package eval

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunOptimizeFindsCertifiedWin(t *testing.T) {
	res, err := RunOptimize(OptimizeParams{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if !rep.Improved {
		t.Fatalf("report not improved:\n%s", rep)
	}
	if !rep.BestCost.Less(rep.BaseCost) {
		t.Fatalf("best cost %s not below base %s", rep.BestCost, rep.BaseCost)
	}
	if rep.CertifyAttempts == 0 || rep.Rejected != 0 {
		t.Fatalf("certification bookkeeping off: attempts=%d rejected=%d",
			rep.CertifyAttempts, rep.Rejected)
	}
	if res.Switches == 0 {
		t.Fatal("optimized compile produced no artifacts")
	}
}

func TestAppendOptimizeRunPreservesSiblings(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_compile.json")
	seed := `{"phases":[{"program":"x"}],"ladder":{"solved":1}}`
	if err := os.WriteFile(path, []byte(seed), 0o644); err != nil {
		t.Fatal(err)
	}

	run := OptimizeRun{Params: OptimizeParams{K: 4, Seed: 1}}
	run.Stamp()
	if run.Timestamp == "" || run.GitSHA == "" {
		t.Fatalf("stamp left provenance empty: %+v", run)
	}
	if err := AppendOptimizeRun(path, run); err != nil {
		t.Fatal(err)
	}
	if err := AppendOptimizeRun(path, run); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"phases", "ladder"} {
		if _, ok := doc[key]; !ok {
			t.Fatalf("append clobbered sibling key %q: %s", key, raw)
		}
	}
	var runs []OptimizeRun
	if err := json.Unmarshal(doc["optimize"], &runs); err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("optimize entries = %d, want 2", len(runs))
	}
	if runs[0].Params.K != 4 || runs[0].Timestamp == "" {
		t.Fatalf("round-tripped run lost fields: %+v", runs[0])
	}
}

func TestAppendOptimizeRunCreatesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fresh.json")
	run := OptimizeRun{Params: OptimizeParams{K: 6}}
	run.Stamp()
	if err := AppendOptimizeRun(path, run); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string][]OptimizeRun
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc["optimize"]) != 1 {
		t.Fatalf("want 1 optimize entry, got %v", doc)
	}
}
