package eval

import (
	"strings"
	"testing"
)

// TestStreamReplayShape runs the streaming experiment at reduced scale and
// checks its structural invariants: every scenario gets an interpreter
// baseline plus engine/compiled rows, lane-safe scenarios also measure a
// fanned-out point, the sketch never fans out, flat tiers beat the
// interpreter, and the flat-tier steady state allocates nothing.
func TestStreamReplayShape(t *testing.T) {
	points, err := StreamReplay(4, 10_000, 2)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]map[string][]int{} // scenario -> tier -> lane counts
	for _, p := range points {
		if rows[p.Scenario] == nil {
			rows[p.Scenario] = map[string][]int{}
		}
		rows[p.Scenario][p.Engine] = append(rows[p.Scenario][p.Engine], p.Lanes)
		if p.Drains == 0 {
			t.Errorf("%s %s lanes=%d: no drains recorded", p.Scenario, p.Engine, p.Lanes)
		}
		if p.Engine != "interpreter" {
			if p.Speedup < 2 {
				t.Errorf("%s %s lanes=%d: speedup %.1fx over interpreter, want >= 2x",
					p.Scenario, p.Engine, p.Lanes, p.Speedup)
			}
			if p.AllocsPerPkt != 0 {
				t.Errorf("%s %s lanes=%d: %.4f allocs/pkt in steady state, want 0",
					p.Scenario, p.Engine, p.Lanes, p.AllocsPerPkt)
			}
		}
	}
	for _, sc := range Scenarios() {
		got := rows[sc.Name]
		if got == nil {
			t.Fatalf("no measurements for scenario %s", sc.Name)
		}
		if n := len(got["interpreter"]); n != 1 {
			t.Errorf("%s: %d interpreter rows, want exactly 1", sc.Name, n)
		}
		want := 1
		if sc.LaneSafe {
			want = 2 // one lane plus the fanned-out point
		}
		for _, tier := range []string{"engine", "compiled"} {
			if n := len(got[tier]); n != want {
				t.Errorf("%s %s: %d lane points %v, want %d", sc.Name, tier, n, got[tier], want)
			}
		}
	}
	out := FormatStream(points)
	for _, want := range []string{"interpreter", "engine", "compiled", "pkts/s", "allocs/pkt", "lanes"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
	if v := CheckStreamAllocs(points, 0); len(v) > 0 {
		t.Errorf("zero-budget allocation check flagged: %v", v)
	}
}

// TestCheckStreamAllocs exercises the violation path on synthetic rows.
func TestCheckStreamAllocs(t *testing.T) {
	pts := []StreamPoint{
		{Scenario: "nat", Engine: "interpreter", Lanes: 1, AllocsPerPkt: 12},
		{Scenario: "nat", Engine: "engine", Lanes: 1, AllocsPerPkt: 0},
		{Scenario: "nat", Engine: "compiled", Lanes: 2, AllocsPerPkt: 0.5},
	}
	v := CheckStreamAllocs(pts, 0.01)
	if len(v) != 1 || !strings.Contains(v[0], "compiled") {
		t.Fatalf("got violations %v, want exactly the compiled row", v)
	}
	if v := CheckStreamAllocs(pts[:2], 0.01); len(v) > 0 {
		t.Fatalf("clean rows flagged: %v", v)
	}
}
