package p4check

import (
	"fmt"
	"strings"
)

// Program is a parsed P4_14 compilation unit (the emitted subset).
type Program struct {
	HeaderTypes    map[string][]string      // type -> field names
	Instances      map[string]string        // header/metadata instance -> type
	Registers      map[string]bool          // register names
	FieldLists     map[string][]string      // field_list -> refs
	FieldCalcs     map[string]string        // calculation -> input field list
	Actions        map[string]*Action       // action name -> body
	Tables         map[string]*Table        // table name -> decl
	Controls       map[string][]ControlStep // control name -> applies
	ParserExtracts []string                 // extracted instances in parser
}

// Action is one action declaration.
type Action struct {
	Name       string
	Params     []string
	Primitives []Primitive
}

// Primitive is one primitive call inside an action.
type Primitive struct {
	Name string
	Args []string // raw argument expressions (field refs, numbers, params)
	Line int
}

// Table is one table declaration.
type Table struct {
	Name    string
	Reads   []string // match field references
	Actions []string
	Size    string
	Line    int
}

// ControlStep is one apply (possibly nested under conditions, which are
// flattened — nesting depth does not affect validation).
type ControlStep struct {
	Table string
	Line  int
}

type parser struct {
	toks []tok
	i    int
}

func (p *parser) cur() tok  { return p.toks[p.i] }
func (p *parser) next() tok { t := p.toks[p.i]; p.i++; return t }

func (p *parser) expect(k tokKind, what string) (tok, error) {
	t := p.cur()
	if t.kind != k {
		return t, fmt.Errorf("line %d: expected %s, found %q", t.line, what, t.String())
	}
	return p.next(), nil
}

func (p *parser) expectIdent(text string) error {
	t := p.cur()
	if t.kind != tIdent || t.text != text {
		return fmt.Errorf("line %d: expected %q, found %q", t.line, text, t.String())
	}
	p.next()
	return nil
}

// skipBalanced consumes a brace-balanced block, assuming the opening brace
// was just consumed.
func (p *parser) skipBalanced() error {
	depth := 1
	for depth > 0 {
		t := p.next()
		switch t.kind {
		case tLBrace:
			depth++
		case tRBrace:
			depth--
		case tEOF:
			return fmt.Errorf("unexpected EOF in block")
		}
	}
	return nil
}

// Parse parses P4_14 source into a Program.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{
		HeaderTypes: map[string][]string{},
		Instances:   map[string]string{},
		Registers:   map[string]bool{},
		FieldLists:  map[string][]string{},
		FieldCalcs:  map[string]string{},
		Actions:     map[string]*Action{},
		Tables:      map[string]*Table{},
		Controls:    map[string][]ControlStep{},
	}
	for p.cur().kind != tEOF {
		t := p.cur()
		if t.kind != tIdent {
			return nil, fmt.Errorf("line %d: unexpected %q at top level", t.line, t.String())
		}
		switch t.text {
		case "header_type":
			if err := p.headerType(prog); err != nil {
				return nil, err
			}
		case "header", "metadata":
			if err := p.instance(prog); err != nil {
				return nil, err
			}
		case "parser":
			if err := p.parserDecl(prog); err != nil {
				return nil, err
			}
		case "register":
			if err := p.register(prog); err != nil {
				return nil, err
			}
		case "field_list":
			if err := p.fieldList(prog); err != nil {
				return nil, err
			}
		case "field_list_calculation":
			if err := p.fieldCalc(prog); err != nil {
				return nil, err
			}
		case "action":
			if err := p.action(prog); err != nil {
				return nil, err
			}
		case "table":
			if err := p.table(prog); err != nil {
				return nil, err
			}
		case "control":
			if err := p.control(prog); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("line %d: unknown declaration %q", t.line, t.text)
		}
	}
	return prog, nil
}

func (p *parser) headerType(prog *Program) error {
	p.next() // header_type
	name, err := p.expect(tIdent, "header type name")
	if err != nil {
		return err
	}
	if _, err := p.expect(tLBrace, "{"); err != nil {
		return err
	}
	if err := p.expectIdent("fields"); err != nil {
		return err
	}
	if _, err := p.expect(tLBrace, "{"); err != nil {
		return err
	}
	var fields []string
	for p.cur().kind == tIdent {
		f := p.next()
		if _, err := p.expect(tColon, ":"); err != nil {
			return err
		}
		if _, err := p.expect(tNumber, "field width"); err != nil {
			return err
		}
		if _, err := p.expect(tSemi, ";"); err != nil {
			return err
		}
		fields = append(fields, f.text)
	}
	if _, err := p.expect(tRBrace, "}"); err != nil {
		return err
	}
	if _, err := p.expect(tRBrace, "}"); err != nil {
		return err
	}
	prog.HeaderTypes[name.text] = fields
	return nil
}

func (p *parser) instance(prog *Program) error {
	p.next() // header | metadata
	typ, err := p.expect(tIdent, "type name")
	if err != nil {
		return err
	}
	name, err := p.expect(tIdent, "instance name")
	if err != nil {
		return err
	}
	if _, err := p.expect(tSemi, ";"); err != nil {
		return err
	}
	prog.Instances[name.text] = typ.text
	return nil
}

func (p *parser) parserDecl(prog *Program) error {
	p.next() // parser
	if _, err := p.expect(tIdent, "parser state name"); err != nil {
		return err
	}
	if _, err := p.expect(tLBrace, "{"); err != nil {
		return err
	}
	for p.cur().kind == tIdent {
		t := p.next()
		switch t.text {
		case "extract":
			if _, err := p.expect(tLParen, "("); err != nil {
				return err
			}
			h, err := p.expect(tIdent, "header instance")
			if err != nil {
				return err
			}
			prog.ParserExtracts = append(prog.ParserExtracts, h.text)
			if _, err := p.expect(tRParen, ")"); err != nil {
				return err
			}
			if _, err := p.expect(tSemi, ";"); err != nil {
				return err
			}
		case "return":
			tgt, err := p.expect(tIdent, "return target")
			if err != nil {
				return err
			}
			if tgt.text == "select" {
				// return select(field) { value : state; default : state; }
				if _, err := p.expect(tLParen, "("); err != nil {
					return err
				}
				if _, err := p.fieldRef(); err != nil {
					return err
				}
				if _, err := p.expect(tRParen, ")"); err != nil {
					return err
				}
				if _, err := p.expect(tLBrace, "{"); err != nil {
					return err
				}
				if err := p.skipBalanced(); err != nil {
					return err
				}
				continue
			}
			if _, err := p.expect(tSemi, ";"); err != nil {
				return err
			}
		default:
			return fmt.Errorf("line %d: unexpected %q in parser", t.line, t.text)
		}
	}
	_, err := p.expect(tRBrace, "}")
	return err
}

func (p *parser) register(prog *Program) error {
	p.next() // register
	name, err := p.expect(tIdent, "register name")
	if err != nil {
		return err
	}
	if _, err := p.expect(tLBrace, "{"); err != nil {
		return err
	}
	if err := p.skipBalanced(); err != nil {
		return err
	}
	prog.Registers[name.text] = true
	return nil
}

func (p *parser) fieldList(prog *Program) error {
	p.next() // field_list
	name, err := p.expect(tIdent, "field list name")
	if err != nil {
		return err
	}
	if _, err := p.expect(tLBrace, "{"); err != nil {
		return err
	}
	var refs []string
	for p.cur().kind == tIdent || p.cur().kind == tNumber {
		if p.cur().kind == tNumber {
			// Constants are legal field_list entries.
			refs = append(refs, p.next().text)
		} else {
			ref, err := p.fieldRef()
			if err != nil {
				return err
			}
			refs = append(refs, ref)
		}
		if _, err := p.expect(tSemi, ";"); err != nil {
			return err
		}
	}
	if _, err := p.expect(tRBrace, "}"); err != nil {
		return err
	}
	prog.FieldLists[name.text] = refs
	return nil
}

func (p *parser) fieldCalc(prog *Program) error {
	p.next() // field_list_calculation
	name, err := p.expect(tIdent, "calculation name")
	if err != nil {
		return err
	}
	if _, err := p.expect(tLBrace, "{"); err != nil {
		return err
	}
	input := ""
	for p.cur().kind == tIdent {
		k := p.next()
		switch k.text {
		case "input":
			if _, err := p.expect(tLBrace, "{"); err != nil {
				return err
			}
			in, err := p.expect(tIdent, "field list name")
			if err != nil {
				return err
			}
			input = in.text
			if _, err := p.expect(tSemi, ";"); err != nil {
				return err
			}
			if _, err := p.expect(tRBrace, "}"); err != nil {
				return err
			}
		case "algorithm", "output_width":
			if _, err := p.expect(tColon, ":"); err != nil {
				return err
			}
			p.next() // value
			if _, err := p.expect(tSemi, ";"); err != nil {
				return err
			}
		default:
			return fmt.Errorf("line %d: unknown calculation attribute %q", k.line, k.text)
		}
	}
	if _, err := p.expect(tRBrace, "}"); err != nil {
		return err
	}
	prog.FieldCalcs[name.text] = input
	return nil
}

// fieldRef parses "a" or "a.b".
func (p *parser) fieldRef() (string, error) {
	a, err := p.expect(tIdent, "identifier")
	if err != nil {
		return "", err
	}
	if p.cur().kind == tDot {
		p.next()
		b, err := p.expect(tIdent, "field name")
		if err != nil {
			return "", err
		}
		return a.text + "." + b.text, nil
	}
	return a.text, nil
}

func (p *parser) action(prog *Program) error {
	p.next() // action
	name, err := p.expect(tIdent, "action name")
	if err != nil {
		return err
	}
	act := &Action{Name: name.text}
	if _, err := p.expect(tLParen, "("); err != nil {
		return err
	}
	for p.cur().kind == tIdent {
		param := p.next()
		act.Params = append(act.Params, param.text)
		if p.cur().kind == tComma {
			p.next()
		}
	}
	if _, err := p.expect(tRParen, ")"); err != nil {
		return err
	}
	if _, err := p.expect(tLBrace, "{"); err != nil {
		return err
	}
	for p.cur().kind == tIdent {
		prim, err := p.primitive()
		if err != nil {
			return err
		}
		act.Primitives = append(act.Primitives, prim)
	}
	if _, err := p.expect(tRBrace, "}"); err != nil {
		return err
	}
	prog.Actions[act.Name] = act
	return nil
}

// primitive parses name(arg, arg, ...); with arguments as raw expressions.
func (p *parser) primitive() (Primitive, error) {
	name := p.next()
	prim := Primitive{Name: name.text, Line: name.line}
	if _, err := p.expect(tLParen, "("); err != nil {
		return prim, err
	}
	depth := 1
	var arg strings.Builder
	flush := func() {
		s := strings.TrimSpace(arg.String())
		if s != "" {
			prim.Args = append(prim.Args, s)
		}
		arg.Reset()
	}
	for depth > 0 {
		t := p.next()
		switch t.kind {
		case tLParen:
			depth++
			arg.WriteString("(")
		case tRParen:
			depth--
			if depth > 0 {
				arg.WriteString(")")
			}
		case tComma:
			if depth == 1 {
				flush()
			} else {
				arg.WriteString(",")
			}
		case tDot:
			arg.WriteString(".")
		case tEOF:
			return prim, fmt.Errorf("line %d: unexpected EOF in primitive", t.line)
		default:
			if arg.Len() > 0 && !strings.HasSuffix(arg.String(), ".") && !strings.HasSuffix(arg.String(), "(") {
				arg.WriteString(" ")
			}
			arg.WriteString(t.text)
		}
	}
	flush()
	if _, err := p.expect(tSemi, ";"); err != nil {
		return prim, err
	}
	return prim, nil
}

func (p *parser) table(prog *Program) error {
	p.next() // table
	name, err := p.expect(tIdent, "table name")
	if err != nil {
		return err
	}
	tbl := &Table{Name: name.text, Line: name.line}
	if _, err := p.expect(tLBrace, "{"); err != nil {
		return err
	}
	for p.cur().kind == tIdent {
		k := p.next()
		switch k.text {
		case "reads":
			if _, err := p.expect(tLBrace, "{"); err != nil {
				return err
			}
			for p.cur().kind == tIdent {
				ref, err := p.fieldRef()
				if err != nil {
					return err
				}
				if _, err := p.expect(tColon, ":"); err != nil {
					return err
				}
				if _, err := p.expect(tIdent, "match kind"); err != nil {
					return err
				}
				if _, err := p.expect(tSemi, ";"); err != nil {
					return err
				}
				tbl.Reads = append(tbl.Reads, ref)
			}
			if _, err := p.expect(tRBrace, "}"); err != nil {
				return err
			}
		case "actions":
			if _, err := p.expect(tLBrace, "{"); err != nil {
				return err
			}
			for p.cur().kind == tIdent {
				a := p.next()
				tbl.Actions = append(tbl.Actions, a.text)
				if _, err := p.expect(tSemi, ";"); err != nil {
					return err
				}
			}
			if _, err := p.expect(tRBrace, "}"); err != nil {
				return err
			}
		case "size":
			if _, err := p.expect(tColon, ":"); err != nil {
				return err
			}
			sz, err := p.expect(tNumber, "size")
			if err != nil {
				return err
			}
			tbl.Size = sz.text
			if _, err := p.expect(tSemi, ";"); err != nil {
				return err
			}
		default:
			return fmt.Errorf("line %d: unknown table attribute %q", k.line, k.text)
		}
	}
	if _, err := p.expect(tRBrace, "}"); err != nil {
		return err
	}
	prog.Tables[tbl.Name] = tbl
	return nil
}

func (p *parser) control(prog *Program) error {
	p.next() // control
	name, err := p.expect(tIdent, "control name")
	if err != nil {
		return err
	}
	if _, err := p.expect(tLBrace, "{"); err != nil {
		return err
	}
	var steps []ControlStep
	depth := 1
	for depth > 0 {
		t := p.next()
		switch {
		case t.kind == tLBrace:
			depth++
		case t.kind == tRBrace:
			depth--
		case t.kind == tEOF:
			return fmt.Errorf("line %d: unexpected EOF in control", t.line)
		case t.kind == tIdent && t.text == "apply":
			if _, err := p.expect(tLParen, "("); err != nil {
				return err
			}
			tn, err := p.expect(tIdent, "table name")
			if err != nil {
				return err
			}
			if _, err := p.expect(tRParen, ")"); err != nil {
				return err
			}
			if _, err := p.expect(tSemi, ";"); err != nil {
				return err
			}
			steps = append(steps, ControlStep{Table: tn.text, Line: tn.line})
		}
	}
	prog.Controls[name.text] = steps
	return nil
}
