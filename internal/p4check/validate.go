package p4check

import (
	"fmt"
	"strings"
)

// knownPrimitives maps P4_14 primitive names to their arity range
// (min, max; max -1 = variadic).
var knownPrimitives = map[string][2]int{
	"modify_field":                        {2, 2},
	"modify_field_conditionally":          {3, 3},
	"modify_field_with_hash_based_offset": {4, 4},
	"add":                                 {3, 3},
	"subtract":                            {3, 3},
	"multiply":                            {3, 3},
	"bit_and":                             {3, 3},
	"bit_or":                              {3, 3},
	"bit_xor":                             {3, 3},
	"shift_left":                          {3, 3},
	"shift_right":                         {3, 3},
	"add_header":                          {1, 1},
	"remove_header":                       {1, 1},
	"drop":                                {0, 0},
	"no_op":                               {0, 0},
	"clone_ingress_pkt_to_egress":         {1, 2},
	"recirculate":                         {1, 1},
	"register_read":                       {3, 3},
	"register_write":                      {3, 3},
	"generate_digest":                     {2, 2},
	"count":                               {2, 2},
}

// externalConstant reports whether an identifier is an all-caps constant
// expected to be supplied by the build environment (mirror sessions,
// digest receivers).
func externalConstant(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= 'A' && c <= 'Z' || c == '_' || c >= '0' && c <= '9') {
			return false
		}
	}
	return s[0] >= 'A' && s[0] <= 'Z'
}

// standardMetadata lists the intrinsic field namespaces accepted without
// declaration.
var standardMetadata = []string{"standard_metadata.", "intrinsic_metadata."}

// Validate resolves every reference in the program and returns the list of
// semantic errors (empty = valid).
func (prog *Program) Validate() []error {
	var errs []error
	errf := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	fieldExists := func(ref string) bool {
		dot := strings.IndexByte(ref, '.')
		if dot < 0 {
			return false
		}
		inst, field := ref[:dot], ref[dot+1:]
		typ, ok := prog.Instances[inst]
		if !ok {
			return false
		}
		for _, f := range prog.HeaderTypes[typ] {
			if f == field {
				return true
			}
		}
		return false
	}
	refOK := func(ref string, params []string) bool {
		for _, std := range standardMetadata {
			if strings.HasPrefix(ref, std) {
				return true
			}
		}
		if isNumber(ref) || externalConstant(ref) {
			return true
		}
		for _, p := range params {
			if ref == p {
				return true
			}
		}
		if !strings.Contains(ref, ".") {
			// Bare identifier: header instance (valid(x)-style) only.
			_, ok := prog.Instances[ref]
			return ok
		}
		return fieldExists(ref)
	}

	// Header instances reference declared types.
	for inst, typ := range prog.Instances {
		if _, ok := prog.HeaderTypes[typ]; !ok {
			errf("instance %s references undeclared header_type %s", inst, typ)
		}
	}
	// Parser extracts declared instances.
	for _, h := range prog.ParserExtracts {
		if _, ok := prog.Instances[h]; !ok {
			errf("parser extracts undeclared instance %s", h)
		}
	}
	// Field lists resolve.
	for name, refs := range prog.FieldLists {
		for _, r := range refs {
			if !refOK(r, nil) {
				errf("field_list %s references unknown field %s", name, r)
			}
		}
	}
	// Calculations reference declared field lists.
	for name, input := range prog.FieldCalcs {
		if input == "" {
			errf("field_list_calculation %s has no input", name)
		} else if _, ok := prog.FieldLists[input]; !ok {
			errf("field_list_calculation %s inputs unknown field_list %s", name, input)
		}
	}
	// Actions: known primitives, arities, resolvable operands.
	for _, act := range prog.Actions {
		for _, prim := range act.Primitives {
			ar, known := knownPrimitives[prim.Name]
			if !known {
				errf("line %d: action %s uses unknown primitive %s", prim.Line, act.Name, prim.Name)
				continue
			}
			if len(prim.Args) < ar[0] || (ar[1] >= 0 && len(prim.Args) > ar[1]) {
				errf("line %d: %s takes %d..%d args, got %d", prim.Line, prim.Name, ar[0], ar[1], len(prim.Args))
			}
			switch prim.Name {
			case "register_read":
				if len(prim.Args) == 3 && !prog.Registers[prim.Args[1]] {
					errf("line %d: register_read of undeclared register %s", prim.Line, prim.Args[1])
				}
			case "register_write":
				if len(prim.Args) == 3 && !prog.Registers[prim.Args[0]] {
					errf("line %d: register_write of undeclared register %s", prim.Line, prim.Args[0])
				}
			case "add_header", "remove_header":
				if len(prim.Args) == 1 {
					if _, ok := prog.Instances[prim.Args[0]]; !ok {
						errf("line %d: %s of undeclared header %s", prim.Line, prim.Name, prim.Args[0])
					}
				}
			case "modify_field_with_hash_based_offset":
				if len(prim.Args) == 4 {
					if _, ok := prog.FieldCalcs[prim.Args[2]]; !ok {
						errf("line %d: hash uses unknown calculation %s", prim.Line, prim.Args[2])
					}
				}
			case "generate_digest":
				if len(prim.Args) == 2 {
					if _, ok := prog.FieldLists[prim.Args[1]]; !ok {
						errf("line %d: generate_digest of undeclared field_list %s", prim.Line, prim.Args[1])
					}
				}
			}
			// Operand resolution for the simple data-movement primitives.
			switch prim.Name {
			case "modify_field", "add", "subtract", "bit_and", "bit_or", "bit_xor",
				"shift_left", "shift_right", "multiply", "modify_field_conditionally":
				for _, a := range prim.Args {
					if isExpr(a) {
						continue // composite expressions checked lexically only
					}
					if !refOK(a, act.Params) {
						errf("line %d: %s references unknown operand %q", prim.Line, prim.Name, a)
					}
				}
			}
		}
	}
	// Tables: reads resolve, actions declared, size sane.
	for _, tbl := range prog.Tables {
		for _, r := range tbl.Reads {
			if !refOK(r, nil) {
				errf("line %d: table %s reads unknown field %s", tbl.Line, tbl.Name, r)
			}
		}
		if len(tbl.Actions) == 0 {
			errf("line %d: table %s has no actions", tbl.Line, tbl.Name)
		}
		for _, a := range tbl.Actions {
			if _, ok := prog.Actions[a]; !ok {
				errf("line %d: table %s lists undeclared action %s", tbl.Line, tbl.Name, a)
			}
		}
	}
	// Controls: applied tables exist; each table applied at most once in
	// the whole program (P4_14 single-apply rule).
	applied := map[string]int{}
	for ctrl, steps := range prog.Controls {
		for _, st := range steps {
			if _, ok := prog.Tables[st.Table]; !ok {
				errf("line %d: control %s applies undeclared table %s", st.Line, ctrl, st.Table)
			}
			applied[st.Table]++
			if applied[st.Table] == 2 {
				errf("line %d: table %s applied more than once", st.Line, st.Table)
			}
		}
	}
	// Every declared table is applied somewhere.
	for name, tbl := range prog.Tables {
		if applied[name] == 0 {
			errf("line %d: table %s is never applied", tbl.Line, name)
		}
	}
	return errs
}

func isNumber(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c == 'x' || c == 'X' ||
			c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F') {
			return false
		}
	}
	return s[0] >= '0' && s[0] <= '9'
}

// isExpr reports whether an argument is a composite expression (contains
// spaces or parentheses from operators), which the checker accepts
// structurally.
func isExpr(s string) bool {
	return strings.ContainsAny(s, " ()")
}
