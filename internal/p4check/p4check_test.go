package p4check

import (
	"strings"
	"testing"

	"lyra/internal/baseline"
)

const valid = `
header_type h_t {
    fields {
        a : 8;
        b : 32;
    }
}
header h_t h;

header_type m_t {
    fields {
        x : 16;
    }
}
metadata m_t meta;

parser start {
    extract(h);
    return ingress;
}

register r {
    width : 32;
    instance_count : 16;
}

field_list fl {
    h.a;
    h.b;
}
field_list_calculation flc {
    input { fl; }
    algorithm : crc32;
    output_width : 16;
}

action a_one(port) {
    modify_field(h.a, 1);
    modify_field(standard_metadata.egress_spec, port);
    register_read(meta.x, r, 3);
    modify_field_with_hash_based_offset(meta.x, 0, flc, 65536);
}
action a_two() {
    add(h.b, h.b, 1);
    drop();
}
table t1 {
    reads { h.a : exact; }
    actions { a_one; a_two; }
    size : 16;
}
control ingress {
    apply(t1);
}
control egress { }
`

func TestParseAndValidateOK(t *testing.T) {
	prog, err := Parse(valid)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if errs := prog.Validate(); len(errs) != 0 {
		t.Fatalf("validate: %v", errs)
	}
	if len(prog.HeaderTypes["h_t"]) != 2 || prog.Instances["meta"] != "m_t" {
		t.Errorf("parse results wrong: %+v", prog)
	}
	if len(prog.Actions["a_one"].Primitives) != 4 {
		t.Errorf("primitives = %d", len(prog.Actions["a_one"].Primitives))
	}
	if prog.Tables["t1"].Size != "16" || len(prog.Tables["t1"].Reads) != 1 {
		t.Errorf("table = %+v", prog.Tables["t1"])
	}
}

func mutate(t *testing.T, old, new string, wantErr string) {
	t.Helper()
	src := strings.Replace(valid, old, new, 1)
	if src == valid {
		t.Fatalf("mutation %q not applied", old)
	}
	prog, err := Parse(src)
	if err != nil {
		if wantErr == "PARSE" {
			return
		}
		t.Fatalf("unexpected parse error: %v", err)
	}
	errs := prog.Validate()
	for _, e := range errs {
		if strings.Contains(e.Error(), wantErr) {
			return
		}
	}
	t.Fatalf("mutation %q: want error containing %q, got %v", old, wantErr, errs)
}

func TestValidateCatchesBrokenReferences(t *testing.T) {
	mutate(t, "reads { h.a : exact; }", "reads { h.zz : exact; }", "unknown field")
	mutate(t, "actions { a_one; a_two; }", "actions { a_ghost; }", "undeclared action")
	mutate(t, "apply(t1);", "apply(ghost);", "undeclared table")
	mutate(t, "register_read(meta.x, r, 3);", "register_read(meta.x, rr, 3);", "undeclared register")
	mutate(t, "modify_field(h.a, 1);", "modify_field(h.ghost, 1);", "unknown operand")
	mutate(t, "modify_field_with_hash_based_offset(meta.x, 0, flc, 65536);",
		"modify_field_with_hash_based_offset(meta.x, 0, nocalc, 65536);", "unknown calculation")
	mutate(t, "extract(h);", "extract(ghost);", "undeclared instance")
	mutate(t, "header h_t h;", "header ghost_t h;", "undeclared header_type")
	mutate(t, "add(h.b, h.b, 1);", "frobnicate(h.b);", "unknown primitive")
	mutate(t, "add(h.b, h.b, 1);", "add(h.b);", "takes 3..3 args")
	mutate(t, "input { fl; }", "input { nofl; }", "unknown field_list")
}

func TestValidateSingleApplyRule(t *testing.T) {
	src := strings.Replace(valid, "apply(t1);", "apply(t1);\n    apply(t1);", 1)
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range prog.Validate() {
		if strings.Contains(e.Error(), "applied more than once") {
			found = true
		}
	}
	if !found {
		t.Fatal("double apply not caught")
	}
}

func TestValidateUnappliedTable(t *testing.T) {
	src := strings.Replace(valid, "apply(t1);", "", 1)
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range prog.Validate() {
		if strings.Contains(e.Error(), "never applied") {
			found = true
		}
	}
	if !found {
		t.Fatal("unapplied table not caught")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"blob x {}",
		"header_type h { fields { a } }",
		"table t { size : ; }",
		"action a( { }",
		"control c { apply(t; }",
		"/* unterminated",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("no parse error for %q", src)
		}
	}
}

// TestBaselinesParse runs the checker over the human-written baseline
// programs: they use the same P4_14 subset and must parse and validate.
func TestBaselinesParse(t *testing.T) {
	for _, name := range baseline.Names() {
		prog, err := Parse(baseline.Programs[name])
		if err != nil {
			t.Errorf("%s: parse: %v", name, err)
			continue
		}
		if errs := prog.Validate(); len(errs) != 0 {
			t.Errorf("%s: %v", name, errs)
		}
	}
}

func TestControlIfConditionsTolerated(t *testing.T) {
	src := strings.Replace(valid, "apply(t1);", "if (h.a == 1) {\n        apply(t1);\n    }", 1)
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if errs := prog.Validate(); len(errs) != 0 {
		t.Fatalf("validate: %v", errs)
	}
}
