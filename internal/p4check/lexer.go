// Package p4check implements a parser and semantic validator for the
// P4_14 subset that Lyra's back-end emits. It stands in for the front half
// of a vendor P4 compiler: generated artifacts are parsed back from text
// and every reference (header fields, actions, tables, registers, parser
// states) is resolved, so "the synthesized code compiles" (§7.1) is checked
// against the actual program text rather than trusted.
package p4check

import "fmt"

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tNumber
	tLBrace
	tRBrace
	tLParen
	tRParen
	tSemi
	tColon
	tComma
	tDot
)

type tok struct {
	kind tokKind
	text string
	line int
}

func (t tok) String() string {
	switch t.kind {
	case tEOF:
		return "EOF"
	case tIdent, tNumber:
		return t.text
	}
	return t.text
}

// lex tokenizes P4_14 source, skipping comments.
func lex(src string) ([]tok, error) {
	var out []tok
	line := 1
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			i += 2
			for i+1 < n && !(src[i] == '*' && src[i+1] == '/') {
				if src[i] == '\n' {
					line++
				}
				i++
			}
			if i+1 >= n {
				return nil, fmt.Errorf("line %d: unterminated comment", line)
			}
			i += 2
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(src[i]) {
				i++
			}
			out = append(out, tok{tIdent, src[start:i], line})
		case c >= '0' && c <= '9':
			start := i
			for i < n && (isIdentPart(src[i])) { // hex digits, 0x prefix
				i++
			}
			out = append(out, tok{tNumber, src[start:i], line})
		default:
			var k tokKind
			switch c {
			case '{':
				k = tLBrace
			case '}':
				k = tRBrace
			case '(':
				k = tLParen
			case ')':
				k = tRParen
			case ';':
				k = tSemi
			case ':':
				k = tColon
			case ',':
				k = tComma
			case '.':
				k = tDot
			default:
				// Operators inside control if-conditions (==, !=, <, &&)
				// and action arguments are tokenized as opaque punctuation.
				out = append(out, tok{kind: tIdent, text: string(c), line: line})
				i++
				continue
			}
			out = append(out, tok{kind: k, text: string(c), line: line})
			i++
		}
	}
	out = append(out, tok{kind: tEOF, line: line})
	return out, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == 'x' || c == 'X'
}
