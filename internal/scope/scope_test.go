package scope

import (
	"strings"
	"testing"

	"lyra/internal/topo"
)

const figure7 = `
# Figure 7 of the paper.
int_in:       [ ToR* | PER-SW | - ]
int_transit:  [ Agg* | PER-SW | - ]
int_out:      [ ToR* | PER-SW | - ]
loadbalancer: [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]
`

func TestParseFigure7(t *testing.T) {
	spec, err := Parse(figure7)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(spec.Scopes) != 4 {
		t.Fatalf("scopes = %d", len(spec.Scopes))
	}
	in, ok := spec.Get("int_in")
	if !ok || in.Deploy != PerSwitch || len(in.Region) != 1 || in.Region[0] != "ToR*" {
		t.Fatalf("int_in = %+v", in)
	}
	lb, _ := spec.Get("loadbalancer")
	if lb.Deploy != MultiSwitch || lb.Direct == nil {
		t.Fatalf("lb = %+v", lb)
	}
	if strings.Join(lb.Direct.From, ",") != "Agg3,Agg4" || strings.Join(lb.Direct.To, ",") != "ToR3,ToR4" {
		t.Fatalf("direct = %+v", lb.Direct)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"noBrackets: ToR*",
		"a: [ToR*|PER-SW]",                 // two fields
		"a: [ToR*|SOMETIMES|-]",            // bad deploy
		"a: [|PER-SW|-]",                   // empty region
		"a: [ToR*|MULTI-SW|-]",             // MULTI-SW without direct
		"a: [ToR*|MULTI-SW|(x)]",           // direct without arrow
		"a: [T|PER-SW|-]\na: [T|PER-SW|-]", // duplicate
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestResolveFigure7(t *testing.T) {
	spec, err := Parse(figure7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := spec.Resolve(topo.Testbed())
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	in := res["int_in"]
	if strings.Join(in.Switches, ",") != "ToR1,ToR2,ToR3,ToR4" {
		t.Errorf("int_in switches = %v", in.Switches)
	}
	lb := res["loadbalancer"]
	if len(lb.Paths) != 4 {
		t.Errorf("lb paths = %v", lb.Paths)
	}
	for _, p := range lb.Paths {
		if !strings.HasPrefix(p[0], "Agg") || !strings.HasPrefix(p[len(p)-1], "ToR") {
			t.Errorf("path direction wrong: %v", p)
		}
	}
}

func TestResolveUnknownRegion(t *testing.T) {
	spec, _ := Parse("a: [ Spine* | PER-SW | - ]")
	if _, err := spec.Resolve(topo.Testbed()); err == nil {
		t.Fatal("unknown region must fail")
	}
}

func TestResolveNoPath(t *testing.T) {
	// ToR1 and ToR3 are in different pods; within the scope {ToR1, ToR3}
	// there is no path.
	spec, _ := Parse("a: [ ToR1,ToR3 | MULTI-SW | (ToR1->ToR3) ]")
	if _, err := spec.Resolve(topo.Testbed()); err == nil {
		t.Fatal("no-path must fail")
	}
}

func TestCommentsAndBlanks(t *testing.T) {
	spec, err := Parse("\n# comment\n\nint_in: [ ToR* | PER-SW | - ]\n")
	if err != nil || len(spec.Scopes) != 1 {
		t.Fatalf("spec = %+v err = %v", spec, err)
	}
}
