// Package scope implements the algorithm-scope specification language
// (§3.3, Figure 7):
//
//	int_in:        [ ToR* | PER-SW | - ]
//	loadbalancer:  [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]
//
// Each line binds an algorithm to a region (a set of candidate switches),
// a deployment mode, and, for MULTI-SW algorithms, the packet-flow
// direction used to enumerate flow paths.
package scope

import (
	"fmt"
	"sort"
	"strings"

	"lyra/internal/topo"
)

// Deploy is the deployment mode of an algorithm (§3.3).
type Deploy int

// Deployment modes.
const (
	// PerSwitch copies the whole algorithm onto each switch in the region.
	PerSwitch Deploy = iota
	// MultiSwitch realizes one logical instance across the region.
	MultiSwitch
)

func (d Deploy) String() string {
	if d == MultiSwitch {
		return "MULTI-SW"
	}
	return "PER-SW"
}

// Direction is the packet-flow direction of a MULTI-SW algorithm.
type Direction struct {
	From []string
	To   []string
}

// Scope is one algorithm's placement specification.
type Scope struct {
	Alg    string
	Region []string // patterns: exact names or prefix wildcards
	Deploy Deploy
	Direct *Direction // nil unless specified
}

// Spec is a full scope specification.
type Spec struct {
	Scopes []Scope
}

// Get returns the scope for an algorithm.
func (s *Spec) Get(alg string) (Scope, bool) {
	for _, sc := range s.Scopes {
		if sc.Alg == alg {
			return sc, true
		}
	}
	return Scope{}, false
}

// Parse reads a Figure-7-style scope specification. Blank lines and lines
// starting with '#' are ignored.
func Parse(text string) (*Spec, error) {
	spec := &Spec{}
	seen := map[string]bool{}
	for lineNo, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sc, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("scope line %d: %w", lineNo+1, err)
		}
		if seen[sc.Alg] {
			return nil, fmt.Errorf("scope line %d: duplicate algorithm %q", lineNo+1, sc.Alg)
		}
		seen[sc.Alg] = true
		spec.Scopes = append(spec.Scopes, sc)
	}
	return spec, nil
}

func parseLine(line string) (Scope, error) {
	colon := strings.Index(line, ":")
	if colon < 0 {
		return Scope{}, fmt.Errorf("missing ':' in %q", line)
	}
	alg := strings.TrimSpace(line[:colon])
	rest := strings.TrimSpace(line[colon+1:])
	if !strings.HasPrefix(rest, "[") || !strings.HasSuffix(rest, "]") {
		return Scope{}, fmt.Errorf("expected [ region | deploy | direct ] in %q", line)
	}
	rest = strings.TrimSuffix(strings.TrimPrefix(rest, "["), "]")
	parts := splitTop(rest, '|')
	if len(parts) != 3 {
		return Scope{}, fmt.Errorf("expected three '|'-separated fields, got %d", len(parts))
	}
	sc := Scope{Alg: alg}
	for _, r := range strings.Split(parts[0], ",") {
		r = strings.TrimSpace(r)
		if r != "" {
			sc.Region = append(sc.Region, r)
		}
	}
	if len(sc.Region) == 0 {
		return Scope{}, fmt.Errorf("empty region")
	}
	switch strings.ToUpper(strings.TrimSpace(parts[1])) {
	case "PER-SW":
		sc.Deploy = PerSwitch
	case "MULTI-SW":
		sc.Deploy = MultiSwitch
	default:
		return Scope{}, fmt.Errorf("deploy must be PER-SW or MULTI-SW, got %q", strings.TrimSpace(parts[1]))
	}
	direct := strings.TrimSpace(parts[2])
	if direct != "-" && direct != "" {
		if !strings.HasPrefix(direct, "(") || !strings.HasSuffix(direct, ")") {
			return Scope{}, fmt.Errorf("direct must be (from->to) or '-', got %q", direct)
		}
		direct = strings.TrimSuffix(strings.TrimPrefix(direct, "("), ")")
		arrow := strings.Index(direct, "->")
		if arrow < 0 {
			return Scope{}, fmt.Errorf("direct missing '->': %q", direct)
		}
		d := &Direction{}
		for _, f := range strings.Split(direct[:arrow], ",") {
			if f = strings.TrimSpace(f); f != "" {
				d.From = append(d.From, f)
			}
		}
		for _, t := range strings.Split(direct[arrow+2:], ",") {
			if t = strings.TrimSpace(t); t != "" {
				d.To = append(d.To, t)
			}
		}
		if len(d.From) == 0 || len(d.To) == 0 {
			return Scope{}, fmt.Errorf("direct needs both endpoints: %q", direct)
		}
		sc.Direct = d
	}
	if sc.Deploy == MultiSwitch && sc.Direct == nil {
		return Scope{}, fmt.Errorf("MULTI-SW algorithm %q requires a direct field", alg)
	}
	return sc, nil
}

// splitTop splits on sep outside parentheses.
func splitTop(s string, sep byte) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case sep:
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

// Resolved is a scope bound to a concrete network: the candidate switch
// set and, for MULTI-SW, the flow paths (§4.3). Paths are backed by a lazy
// topo.PathSet; by default they are also materialized into Paths (bounded
// by the path budget), but LazyPaths resolution leaves Paths nil and
// consumers iterate with EachPath instead — datacenter-scale scopes never
// hold every simple path in memory at once.
type Resolved struct {
	Scope
	Switches []string   // concrete switch names, sorted
	Paths    [][]string // materialized flow paths (MULTI-SW only; nil when lazy)
	// PathSet is the lazy path view (MULTI-SW only). It reflects the
	// network the scope was resolved against.
	PathSet *topo.PathSet
	// MaxPaths is the enumeration budget inherited from resolution;
	// EachPath surfaces a *topo.PathLimitError past it. 0 means the
	// default budget.
	MaxPaths int64

	pathCount int64 // memoized EachPath count (-1 = unknown)
}

// DefaultMaxPaths bounds path enumeration when the caller does not choose a
// budget: large enough for every realistic scope, small enough that an
// exponentially wandering scope surfaces a typed diagnostic instead of
// consuming the machine.
const DefaultMaxPaths = 1 << 20

// ResolveOpts tunes scope resolution.
type ResolveOpts struct {
	// AllowMissing tolerates region or direction patterns that no longer
	// match any switch — the situation after a failure removed devices the
	// spec names explicitly. Resolution still fails if an entire region or
	// direction endpoint set becomes empty, or no flow path survives.
	AllowMissing bool
	// LazyPaths skips materializing MULTI-SW flow paths: Resolved.Paths
	// stays nil and consumers must iterate Resolved.EachPath. Required for
	// datacenter-scale scopes whose path sets dwarf memory.
	LazyPaths bool
	// MaxPaths caps path enumeration per scope (0 = DefaultMaxPaths).
	// Exceeding the cap fails resolution (eager) or the first EachPath
	// (lazy) with an error wrapping topo.ErrPathLimit.
	MaxPaths int64
}

// Resolve binds every scope to the network, expanding region patterns and
// enumerating flow paths.
func (s *Spec) Resolve(net *topo.Network) (map[string]*Resolved, error) {
	return s.ResolveWith(net, ResolveOpts{})
}

// ResolveWith is Resolve with explicit options; recompilation after a
// fault uses AllowMissing so that a scope naming a dead switch degrades to
// the surviving members instead of failing outright.
func (s *Spec) ResolveWith(net *topo.Network, opts ResolveOpts) (map[string]*Resolved, error) {
	out := map[string]*Resolved{}
	for _, sc := range s.Scopes {
		r := &Resolved{Scope: sc}
		set := map[string]bool{}
		for _, pat := range sc.Region {
			matched := net.Match(pat)
			if len(matched) == 0 && !opts.AllowMissing {
				return nil, fmt.Errorf("scope %s: region pattern %q matches no switch", sc.Alg, pat)
			}
			for _, sw := range matched {
				set[sw.Name] = true
			}
		}
		if len(set) == 0 {
			return nil, fmt.Errorf("scope %s: region %v matches no surviving switch", sc.Alg, sc.Region)
		}
		for name := range set {
			r.Switches = append(r.Switches, name)
		}
		sort.Strings(r.Switches)
		r.pathCount = -1
		if sc.Deploy == MultiSwitch {
			from, err := expand(net, sc.Direct.From, opts)
			if err != nil {
				return nil, fmt.Errorf("scope %s: %w", sc.Alg, err)
			}
			to, err := expand(net, sc.Direct.To, opts)
			if err != nil {
				return nil, fmt.Errorf("scope %s: %w", sc.Alg, err)
			}
			r.PathSet = net.PathSet(from, to, r.Switches)
			r.MaxPaths = opts.MaxPaths
			if r.MaxPaths <= 0 {
				r.MaxPaths = DefaultMaxPaths
			}
			if opts.LazyPaths {
				if !r.PathSet.Any() {
					return nil, fmt.Errorf("scope %s: no flow path from %v to %v within %v",
						sc.Alg, sc.Direct.From, sc.Direct.To, r.Switches)
				}
			} else {
				paths, err := r.PathSet.Materialize(r.MaxPaths)
				if err != nil {
					return nil, fmt.Errorf("scope %s: %w", sc.Alg, err)
				}
				r.Paths = paths
				r.pathCount = int64(len(paths))
				if len(r.Paths) == 0 {
					return nil, fmt.Errorf("scope %s: no flow path from %v to %v within %v",
						sc.Alg, sc.Direct.From, sc.Direct.To, r.Switches)
				}
			}
		}
		out[sc.Alg] = r
	}
	return out, nil
}

// EachPath iterates the scope's flow paths in deterministic order: the
// materialized slice when present (its sorted order), otherwise the lazy
// PathSet in DFS order under the resolution budget. The yielded slice is
// only valid during the callback — copy to retain. Returning false stops
// the iteration early.
func (r *Resolved) EachPath(yield func(path []string) bool) error {
	if r.Paths != nil {
		for _, p := range r.Paths {
			if !yield(p) {
				return nil
			}
		}
		return nil
	}
	if r.PathSet == nil {
		return nil
	}
	limit := r.MaxPaths
	if limit <= 0 {
		limit = DefaultMaxPaths
	}
	_, err := r.PathSet.Each(limit, yield)
	return err
}

// PathCount returns the number of flow paths in the scope (memoized).
// Hand-built Resolved values (zero pathCount) are handled by preferring the
// materialized slice and treating 0 as "unknown" for the lazy case.
func (r *Resolved) PathCount() (int64, error) {
	if r.Paths != nil {
		r.pathCount = int64(len(r.Paths))
		return r.pathCount, nil
	}
	if r.pathCount > 0 {
		return r.pathCount, nil
	}
	if r.PathSet == nil {
		r.pathCount = 0
		return 0, nil
	}
	limit := r.MaxPaths
	if limit <= 0 {
		limit = DefaultMaxPaths
	}
	n, err := r.PathSet.Count(limit)
	if err != nil {
		return n, err
	}
	r.pathCount = n
	return n, nil
}

func expand(net *topo.Network, patterns []string, opts ResolveOpts) ([]string, error) {
	set := map[string]bool{}
	for _, p := range patterns {
		ms := net.Match(p)
		if len(ms) == 0 && !opts.AllowMissing {
			return nil, fmt.Errorf("pattern %q matches no switch", p)
		}
		for _, m := range ms {
			set[m.Name] = true
		}
	}
	if len(set) == 0 {
		return nil, fmt.Errorf("patterns %v match no surviving switch", patterns)
	}
	var out []string
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}
