package dataplane

import (
	"fmt"

	"lyra/internal/ir"
	"lyra/internal/lang/ast"
)

// bitWriter packs values MSB-first at arbitrary bit widths, the way header
// fields sit on the wire.
type bitWriter struct {
	buf  []byte
	nbit int
}

func (w *bitWriter) write(v uint64, bits int) {
	for i := bits - 1; i >= 0; i-- {
		bit := (v >> uint(i)) & 1
		byteIdx := w.nbit / 8
		if byteIdx >= len(w.buf) {
			w.buf = append(w.buf, 0)
		}
		if bit == 1 {
			w.buf[byteIdx] |= 1 << uint(7-w.nbit%8)
		}
		w.nbit++
	}
}

// bitReader unpacks values MSB-first.
type bitReader struct {
	buf  []byte
	nbit int
}

func (r *bitReader) remaining() int { return len(r.buf)*8 - r.nbit }

func (r *bitReader) read(bits int) (uint64, error) {
	if bits > r.remaining() {
		return 0, fmt.Errorf("dataplane: truncated packet: need %d bits, have %d", bits, r.remaining())
	}
	var v uint64
	for i := 0; i < bits; i++ {
		byteIdx := r.nbit / 8
		bit := (r.buf[byteIdx] >> uint(7-r.nbit%8)) & 1
		v = v<<1 | uint64(bit)
		r.nbit++
	}
	return v, nil
}

// headerLayout returns a header instance's fields (name, bits) in wire
// order, resolving through the instance's type or a packet declaration.
func headerLayout(irp *ir.Program, instance string) ([][2]interface{}, bool) {
	src := irp.Source
	if inst := src.Instance(instance); inst != nil {
		if ht := src.Header(inst.TypeName); ht != nil {
			out := make([][2]interface{}, len(ht.Fields))
			for i, f := range ht.Fields {
				out[i] = [2]interface{}{f.Name, f.Type.Bits}
			}
			return out, true
		}
	}
	for _, pk := range src.Packets {
		if pk.Name == instance {
			out := make([][2]interface{}, len(pk.Fields))
			for i, f := range pk.Fields {
				out[i] = [2]interface{}{f.Name, f.Type.Bits}
			}
			return out, true
		}
	}
	return nil, false
}

// wireOrder returns header instances in on-the-wire order: the program's
// parse-graph order when parser_nodes exist (graph edges define what
// follows what), else source declaration order.
func wireOrder(irp *ir.Program) []string {
	src := irp.Source
	if len(src.Parsers) == 0 {
		var out []string
		for _, inst := range src.Instances {
			out = append(out, inst.Name)
		}
		for _, pk := range src.Packets {
			out = append(out, pk.Name)
		}
		return out
	}
	// Topological walk of the parse graph from "start" (or the first
	// node), collecting extracts in first-visit order.
	var out []string
	seen := map[string]bool{}
	visited := map[string]bool{}
	var visit func(name string)
	visit = func(name string) {
		if name == "" || name == "accept" || name == "ingress" || visited[name] {
			return
		}
		visited[name] = true
		for _, pn := range src.Parsers {
			if pn.Name != name {
				continue
			}
			for _, e := range pn.Extracts {
				if !seen[e] {
					seen[e] = true
					out = append(out, e)
				}
			}
			if pn.Select != nil {
				for _, c := range pn.Select.Cases {
					visit(c.Next)
				}
				visit(pn.Select.Default)
			}
		}
	}
	start := "start"
	found := false
	for _, pn := range src.Parsers {
		if pn.Name == "start" {
			found = true
		}
	}
	if !found {
		start = src.Parsers[0].Name
	}
	visit(start)
	// Headers never mentioned in the parse graph (added mid-pipeline, like
	// INT metadata) follow in declaration order.
	for _, inst := range src.Instances {
		if !seen[inst.Name] {
			out = append(out, inst.Name)
		}
	}
	return out
}

// Serialize packs a packet's valid headers into wire bytes, followed by
// the payload. With a parse graph, headers are emitted in the order the
// parser would extract them for this packet's select values (so the bytes
// re-parse to the same packet); headers the graph never reaches — and all
// headers in graph-less programs — follow in declaration order.
func Serialize(irp *ir.Program, pkt *Packet, payload []byte) ([]byte, error) {
	w := &bitWriter{}
	emitted := map[string]bool{}
	emit := func(h string) error {
		if emitted[h] || !pkt.Valid[h] {
			return nil
		}
		layout, ok := headerLayout(irp, h)
		if !ok {
			return fmt.Errorf("dataplane: no layout for header %q", h)
		}
		for _, f := range layout {
			name, bits := f[0].(string), f[1].(int)
			w.write(mask(pkt.Fields[h+"."+name], bits), bits)
		}
		emitted[h] = true
		return nil
	}
	src := irp.Source
	if len(src.Parsers) > 0 {
		state := "start"
		found := false
		for _, pn := range src.Parsers {
			if pn.Name == "start" {
				found = true
			}
		}
		if !found {
			state = src.Parsers[0].Name
		}
		for state != "" && state != "accept" && state != "ingress" {
			var node *ast.ParserNode
			for _, pn := range src.Parsers {
				if pn.Name == state {
					node = pn
					break
				}
			}
			if node == nil {
				break
			}
			stop := false
			for _, h := range node.Extracts {
				if !pkt.Valid[h] {
					stop = true // parser would extract garbage; packet ends here
					break
				}
				if err := emit(h); err != nil {
					return nil, err
				}
			}
			if stop || node.Select == nil {
				break
			}
			keyStr, err := selectKey(node.Select.Key)
			if err != nil {
				return nil, err
			}
			v := pkt.Fields[keyStr]
			next := node.Select.Default
			for _, c := range node.Select.Cases {
				if c.Value == v {
					next = c.Next
					break
				}
			}
			state = next
		}
	}
	// Remaining valid headers (graph-less programs, or headers added
	// mid-pipeline that no parser state reaches) in declaration order.
	for _, h := range wireOrder(irp) {
		if err := emit(h); err != nil {
			return nil, err
		}
	}
	if w.nbit%8 != 0 {
		w.nbit = (w.nbit/8 + 1) * 8 // pad to a byte boundary
	}
	return append(w.buf, payload...), nil
}

// ParseBytes runs the program's parse graph over raw bytes, producing a
// packet with extracted fields and header validity, plus the unconsumed
// payload. Programs without parser_nodes extract every declared header in
// order while bytes remain.
func ParseBytes(irp *ir.Program, data []byte) (*Packet, []byte, error) {
	pkt := NewPacket()
	r := &bitReader{buf: data}
	src := irp.Source

	extract := func(h string) error {
		layout, ok := headerLayout(irp, h)
		if !ok {
			return fmt.Errorf("dataplane: no layout for header %q", h)
		}
		for _, f := range layout {
			name, bits := f[0].(string), f[1].(int)
			v, err := r.read(bits)
			if err != nil {
				return err
			}
			pkt.Fields[h+"."+name] = v
		}
		pkt.Valid[h] = true
		return nil
	}

	if len(src.Parsers) == 0 {
		for _, h := range wireOrder(irp) {
			layout, _ := headerLayout(irp, h)
			need := 0
			for _, f := range layout {
				need += f[1].(int)
			}
			if r.remaining() < need {
				break
			}
			if err := extract(h); err != nil {
				return nil, nil, err
			}
		}
	} else {
		state := "start"
		found := false
		for _, pn := range src.Parsers {
			if pn.Name == "start" {
				found = true
			}
		}
		if !found {
			state = src.Parsers[0].Name
		}
		for state != "" && state != "accept" && state != "ingress" {
			var node *ast.ParserNode
			for _, pn := range src.Parsers {
				if pn.Name == state {
					node = pn
					break
				}
			}
			if node == nil {
				return nil, nil, fmt.Errorf("dataplane: parse state %q undefined", state)
			}
			for _, h := range node.Extracts {
				if err := extract(h); err != nil {
					return nil, nil, err
				}
			}
			if node.Select == nil {
				break
			}
			keyStr, err := selectKey(node.Select.Key)
			if err != nil {
				return nil, nil, err
			}
			v := pkt.Fields[keyStr]
			next := node.Select.Default
			for _, c := range node.Select.Cases {
				if c.Value == v {
					next = c.Next
					break
				}
			}
			state = next
		}
	}
	// Payload: remaining whole bytes.
	off := (r.nbit + 7) / 8
	if off > len(data) {
		off = len(data)
	}
	return pkt, data[off:], nil
}

// selectKey renders a parser select key expression as "hdr.field".
func selectKey(e ast.Expr) (string, error) {
	fa, ok := e.(*ast.FieldAccess)
	if !ok {
		return "", fmt.Errorf("dataplane: select key must be a header field, got %s", ast.ExprString(e))
	}
	base, ok := fa.X.(*ast.Ident)
	if !ok {
		return "", fmt.Errorf("dataplane: select key base must be a header instance")
	}
	return base.Name + "." + fa.Name, nil
}
