package dataplane

// A pcap-like trace format for streaming replay. A .lyt file is a plain
// text capture: one record per line, in capture order, each carrying a
// timestamp and the packet's header contents. Text keeps traces
// diffable, shrinkable, and writable by hand in testdata/, while the
// record order and per-record timestamps preserve what a binary capture
// would: global arrival order and the inter-packet gaps that
// timeout-driven programs (flowlets, idle eviction) key on.
//
//	# lyra trace v1
//	packet ts=100 valid=ipv4,tcp ipv4.src_ip=0xa000001 tcp.src_port=80
//	packet ts=140 valid=ipv4 ipv4.src_ip=0xa000002
//
// Unknown directives are rejected, not skipped — a typo in a checked-in
// trace should fail loudly.

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// TraceRecord is one captured packet: its timestamp, valid headers, and
// field values.
type TraceRecord struct {
	TS     uint64
	Valid  []string
	Fields map[string]uint64
}

// Packet materializes the record as a map-based packet. When tsField is
// non-empty the timestamp is written into that field, so programs read
// capture time from the packet exactly like a replayed pcap.
func (r *TraceRecord) Packet(tsField string) *Packet {
	p := NewPacket()
	for _, h := range r.Valid {
		p.Valid[h] = true
	}
	for k, v := range r.Fields {
		p.Fields[k] = v
	}
	if tsField != "" {
		p.Fields[tsField] = r.TS
	}
	return p
}

// ParseTrace reads a .lyt capture.
func ParseTrace(r io.Reader) ([]TraceRecord, error) {
	var recs []TraceRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] != "packet" {
			return nil, fmt.Errorf("trace line %d: unknown directive %q", lineNo, fields[0])
		}
		rec := TraceRecord{Fields: map[string]uint64{}}
		for _, tok := range fields[1:] {
			k, v, ok := strings.Cut(tok, "=")
			if !ok {
				return nil, fmt.Errorf("trace line %d: malformed token %q", lineNo, tok)
			}
			switch k {
			case "ts":
				n, err := strconv.ParseUint(v, 0, 64)
				if err != nil {
					return nil, fmt.Errorf("trace line %d: bad ts %q: %v", lineNo, v, err)
				}
				rec.TS = n
			case "valid":
				if v != "" {
					rec.Valid = strings.Split(v, ",")
				}
			default:
				if !strings.Contains(k, ".") {
					return nil, fmt.Errorf("trace line %d: field %q is not hdr.field", lineNo, k)
				}
				n, err := strconv.ParseUint(v, 0, 64)
				if err != nil {
					return nil, fmt.Errorf("trace line %d: bad value %q for %s: %v", lineNo, v, k, err)
				}
				rec.Fields[k] = n
			}
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// WriteTrace writes records in the .lyt format, fields sorted for stable
// diffs.
func WriteTrace(w io.Writer, recs []TraceRecord) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# lyra trace v1")
	for _, r := range recs {
		fmt.Fprintf(bw, "packet ts=%d", r.TS)
		if len(r.Valid) > 0 {
			fmt.Fprintf(bw, " valid=%s", strings.Join(r.Valid, ","))
		}
		keys := make([]string, 0, len(r.Fields))
		for k := range r.Fields {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(bw, " %s=%d", k, r.Fields[k])
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// LoadTraceFile reads a .lyt capture from disk.
func LoadTraceFile(path string) ([]TraceRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := ParseTrace(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

// SaveTraceFile writes a .lyt capture to disk.
func SaveTraceFile(path string, recs []TraceRecord) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTrace(f, recs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// FlattenTrace materializes every record as an engine packet, timestamps
// applied to tsField when non-empty.
func (e *Engine) FlattenTrace(recs []TraceRecord, tsField string) []*FlatPacket {
	out := make([]*FlatPacket, len(recs))
	for i := range recs {
		out[i] = e.Flatten(recs[i].Packet(tsField))
	}
	return out
}
