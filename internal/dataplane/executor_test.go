package dataplane

import (
	"math/rand"
	"strings"
	"testing"
)

// TestExecutorTiersAgree runs the same packet stream through all three
// executor tiers and asserts byte-identical outputs packet by packet.
func TestExecutorTiersAgree(t *testing.T) {
	plan, _ := compile(t, lbSrc, lbScope)
	tables := NewTables()
	for vip := uint64(0); vip < 16; vip++ {
		tables.Set("vip_table", vip, 0xC0A80000+vip)
	}
	mkDep := func() *Deployment {
		dep, err := NewDeployment(plan, tables)
		if err != nil {
			t.Fatal(err)
		}
		return dep
	}
	// One deployment per tier: the interpreter tier mutates shared
	// per-switch globals while the flat tiers keep state in lanes.
	deps := map[ExecutorTier]*Deployment{
		TierInterpreter: mkDep(),
		TierEngine:      mkDep(),
		TierCompiled:    mkDep(),
	}
	execs := map[ExecutorTier]Executor{}
	engines := map[ExecutorTier]*Engine{}
	for tier, dep := range deps {
		x, err := dep.ExecutorFor(tier)
		if err != nil {
			t.Fatalf("%v: %v", tier, err)
		}
		if x.Tier() != tier {
			t.Fatalf("ExecutorFor(%v) reports tier %v", tier, x.Tier())
		}
		execs[tier] = x
		// Each deployment's engine flattens its own packets (executors
		// reject packets from a foreign layout).
		eng, err := dep.Engine()
		if err != nil {
			t.Fatal(err)
		}
		engines[tier] = eng
	}
	paths := plan.Input.Scopes["loadbalancer"].Paths
	ctx := &Context{SwitchID: 3, IngressTS: 50}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 30; i++ {
		pkt := randomLBPacket(rng)
		outs := map[ExecutorTier]string{}
		for tier, x := range execs {
			f := engines[tier].Flatten(pkt)
			if err := x.RunPacket(paths[0], ctx, f); err != nil {
				t.Fatalf("%v RunPacket: %v", tier, err)
			}
			outs[tier] = f.Packet().Summary()
		}
		if outs[TierEngine] != outs[TierInterpreter] || outs[TierCompiled] != outs[TierInterpreter] {
			t.Fatalf("packet %d tier divergence:\n  interp:   %s\n  engine:   %s\n  compiled: %s",
				i, outs[TierInterpreter], outs[TierEngine], outs[TierCompiled])
		}
	}
}

// TestExecutorBatchAgree runs one batch through each tier's RunBatch.
func TestExecutorBatchAgree(t *testing.T) {
	plan, _ := compile(t, lbSrc, lbScope)
	tables := NewTables()
	for vip := uint64(0); vip < 16; vip++ {
		tables.Set("vip_table", vip, 0xC0A80000+vip)
	}
	paths := plan.Input.Scopes["loadbalancer"].Paths
	ctx := &Context{SwitchID: 2}
	const n = 64
	var want []string
	for _, tier := range []ExecutorTier{TierInterpreter, TierEngine, TierCompiled} {
		dep, err := NewDeployment(plan, tables)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := dep.Engine()
		if err != nil {
			t.Fatal(err)
		}
		x, err := dep.ExecutorFor(tier)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(14))
		pkts := make([]*FlatPacket, n)
		for i := range pkts {
			pkts[i] = eng.Flatten(randomLBPacket(rng))
		}
		if err := x.RunBatch(paths[0], ctx, pkts, 2); err != nil {
			t.Fatalf("%v RunBatch: %v", tier, err)
		}
		if tier == TierInterpreter {
			for _, f := range pkts {
				want = append(want, f.Packet().Summary())
			}
			continue
		}
		for i, f := range pkts {
			if got := f.Packet().Summary(); got != want[i] {
				t.Fatalf("%v packet %d diverges:\n  interp: %s\n  got:    %s", tier, i, want[i], got)
			}
		}
	}
}

// TestExecutorSelection: WithExecutor picks the tier Deployment.Executor
// (and the ReplayTraffic shim) routes through; the default is the engine.
func TestExecutorSelection(t *testing.T) {
	plan, _ := compile(t, lbSrc, lbScope)
	tables := NewTables()

	dep, err := NewDeployment(plan, tables)
	if err != nil {
		t.Fatal(err)
	}
	x, err := dep.Executor()
	if err != nil {
		t.Fatal(err)
	}
	if x.Tier() != TierEngine {
		t.Fatalf("default executor tier = %v, want %v", x.Tier(), TierEngine)
	}

	for _, tier := range []ExecutorTier{TierInterpreter, TierEngine, TierCompiled} {
		dep, err := NewDeployment(plan, tables, WithExecutor(tier))
		if err != nil {
			t.Fatal(err)
		}
		x, err := dep.Executor()
		if err != nil {
			t.Fatal(err)
		}
		if x.Tier() != tier {
			t.Fatalf("WithExecutor(%v) selected %v", tier, x.Tier())
		}
		// ReplayTraffic routes through the selected tier and its stats.
		eng, err := dep.Engine()
		if err != nil {
			t.Fatal(err)
		}
		paths := plan.Input.Scopes["loadbalancer"].Paths
		rng := rand.New(rand.NewSource(15))
		pkts := make([]*FlatPacket, 8)
		for i := range pkts {
			pkts[i] = eng.Flatten(randomLBPacket(rng))
		}
		if err := dep.ReplayTraffic(paths[0], &Context{SwitchID: 1}, pkts, 1); err != nil {
			t.Fatal(err)
		}
		st := x.Stats()
		if st.Tier != tier.String() {
			t.Fatalf("stats tier = %q, want %q", st.Tier, tier.String())
		}
		if st.Packets != 8 || st.Batches != 1 {
			t.Fatalf("%v stats = %+v, want 8 packets / 1 batch", tier, st)
		}
	}

	if _, err := dep.ExecutorFor(ExecutorTier(42)); err == nil {
		t.Fatal("unknown tier must error")
	}
}

// TestExecutorCachedPerTier: repeated Executor calls return the same
// instance, so stats accumulate across calls.
func TestExecutorCachedPerTier(t *testing.T) {
	dep, _, paths := lbDeployment(t)
	x1, err := dep.ExecutorFor(TierCompiled)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := dep.ExecutorFor(TierCompiled)
	if err != nil {
		t.Fatal(err)
	}
	if x1 != x2 {
		t.Fatal("ExecutorFor rebuilt an executor instead of returning the cache")
	}
	eng, err := dep.Engine()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(16))
	f := eng.Flatten(randomLBPacket(rng))
	for i := 0; i < 3; i++ {
		if err := x1.RunPacket(paths[0], &Context{}, f); err != nil {
			t.Fatal(err)
		}
	}
	if st := x2.Stats(); st.Packets != 3 {
		t.Fatalf("stats did not accumulate across the cached instance: %+v", st)
	}
}

// TestExecutorForInvalidTier: out-of-range tiers — negative, one past the
// last, and far out — are typed errors naming the tier, never a panic or a
// nil executor, and they leave the deployment usable.
func TestExecutorForInvalidTier(t *testing.T) {
	plan, _ := compile(t, lbSrc, lbScope)
	dep, err := NewDeployment(plan, NewTables())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []ExecutorTier{ExecutorTier(-1), ExecutorTier(3), ExecutorTier(42)} {
		x, err := dep.ExecutorFor(bad)
		if err == nil {
			t.Fatalf("ExecutorFor(%v) succeeded with executor %v", bad, x)
		}
		if x != nil {
			t.Fatalf("ExecutorFor(%v) returned a non-nil executor alongside the error", bad)
		}
		if !strings.Contains(err.Error(), "unknown executor tier") ||
			!strings.Contains(err.Error(), bad.String()) {
			t.Fatalf("ExecutorFor(%v) error does not name the tier: %v", bad, err)
		}
	}
	// Valid tiers still work on the same deployment afterwards.
	x, err := dep.Executor()
	if err != nil {
		t.Fatal(err)
	}
	if x.Tier() != TierEngine {
		t.Fatalf("deployment damaged by invalid-tier probes: tier = %v", x.Tier())
	}
}

// TestExecutorObservesTableMutationsMidReplay drives control-plane churn
// through a live executor: entries installed with SetSwitchEntry become
// visible to the next packet through the same Executor instance (the
// per-switch generation bump rebinds the lane's table views), and
// ClearSwitchTable makes them vanish again. Checked on both flat tiers,
// where lowered table state is cached and invalidation is load-bearing.
func TestExecutorObservesTableMutationsMidReplay(t *testing.T) {
	plan, _ := compile(t, lbSrc, lbScope)
	for _, tier := range []ExecutorTier{TierEngine, TierCompiled} {
		// No VIP entries: the packet's dstAddr passes through unchanged
		// until the mutation installs a mapping.
		dep, err := NewDeployment(plan, NewTables(), WithExecutor(tier))
		if err != nil {
			t.Fatal(err)
		}
		x, err := dep.Executor()
		if err != nil {
			t.Fatal(err)
		}
		if x.Tier() != tier {
			t.Fatalf("WithExecutor(%v) selected %v", tier, x.Tier())
		}
		eng, err := dep.Engine()
		if err != nil {
			t.Fatal(err)
		}
		path := plan.Input.Scopes["loadbalancer"].Paths[0]
		ctx := &Context{SwitchID: 1}
		mkPkt := func() *FlatPacket {
			p := NewPacket()
			p.Valid["ipv4"] = true
			p.Valid["tcp"] = true
			p.Fields["ipv4.srcAddr"] = 0x0A000001
			p.Fields["ipv4.dstAddr"] = 5
			p.Fields["ipv4.protocol"] = 6
			p.Fields["tcp.srcPort"] = 1234
			p.Fields["tcp.dstPort"] = 80
			return eng.Flatten(p)
		}
		runDst := func() uint64 {
			f := mkPkt()
			if err := x.RunPacket(path, ctx, f); err != nil {
				t.Fatalf("%v RunPacket: %v", tier, err)
			}
			return f.Packet().Fields["ipv4.dstAddr"]
		}

		if got := runDst(); got != 5 {
			t.Fatalf("%v: empty tables rewrote dstAddr to %#x", tier, got)
		}
		for _, sw := range path {
			dep.SetSwitchEntry(sw, "vip_table", 5, 0xDEAD)
		}
		if got := runDst(); got != 0xDEAD {
			t.Fatalf("%v: mid-replay SetSwitchEntry not observed: dstAddr = %#x, want 0xdead", tier, got)
		}
		for _, sw := range path {
			dep.ClearSwitchTable(sw, "vip_table")
		}
		if got := runDst(); got != 5 {
			t.Fatalf("%v: mid-replay ClearSwitchTable not observed: dstAddr = %#x, want 5", tier, got)
		}
		if st := x.Stats(); st.Packets != 3 {
			t.Fatalf("%v: stats = %+v, want 3 packets", tier, st)
		}
	}
}

// TestExecutorTierString covers the tier names the JSON artifacts key on.
func TestExecutorTierString(t *testing.T) {
	for tier, want := range map[ExecutorTier]string{
		TierInterpreter:  "interpreter",
		TierEngine:       "engine",
		TierCompiled:     "compiled",
		ExecutorTier(42): "tier(42)",
	} {
		if got := tier.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(tier), got, want)
		}
	}
}
