package dataplane

import (
	"math/rand"
	"testing"
)

// TestExecutorTiersAgree runs the same packet stream through all three
// executor tiers and asserts byte-identical outputs packet by packet.
func TestExecutorTiersAgree(t *testing.T) {
	plan, _ := compile(t, lbSrc, lbScope)
	tables := NewTables()
	for vip := uint64(0); vip < 16; vip++ {
		tables.Set("vip_table", vip, 0xC0A80000+vip)
	}
	mkDep := func() *Deployment {
		dep, err := NewDeployment(plan, tables)
		if err != nil {
			t.Fatal(err)
		}
		return dep
	}
	// One deployment per tier: the interpreter tier mutates shared
	// per-switch globals while the flat tiers keep state in lanes.
	deps := map[ExecutorTier]*Deployment{
		TierInterpreter: mkDep(),
		TierEngine:      mkDep(),
		TierCompiled:    mkDep(),
	}
	execs := map[ExecutorTier]Executor{}
	engines := map[ExecutorTier]*Engine{}
	for tier, dep := range deps {
		x, err := dep.ExecutorFor(tier)
		if err != nil {
			t.Fatalf("%v: %v", tier, err)
		}
		if x.Tier() != tier {
			t.Fatalf("ExecutorFor(%v) reports tier %v", tier, x.Tier())
		}
		execs[tier] = x
		// Each deployment's engine flattens its own packets (executors
		// reject packets from a foreign layout).
		eng, err := dep.Engine()
		if err != nil {
			t.Fatal(err)
		}
		engines[tier] = eng
	}
	paths := plan.Input.Scopes["loadbalancer"].Paths
	ctx := &Context{SwitchID: 3, IngressTS: 50}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 30; i++ {
		pkt := randomLBPacket(rng)
		outs := map[ExecutorTier]string{}
		for tier, x := range execs {
			f := engines[tier].Flatten(pkt)
			if err := x.RunPacket(paths[0], ctx, f); err != nil {
				t.Fatalf("%v RunPacket: %v", tier, err)
			}
			outs[tier] = f.Packet().Summary()
		}
		if outs[TierEngine] != outs[TierInterpreter] || outs[TierCompiled] != outs[TierInterpreter] {
			t.Fatalf("packet %d tier divergence:\n  interp:   %s\n  engine:   %s\n  compiled: %s",
				i, outs[TierInterpreter], outs[TierEngine], outs[TierCompiled])
		}
	}
}

// TestExecutorBatchAgree runs one batch through each tier's RunBatch.
func TestExecutorBatchAgree(t *testing.T) {
	plan, _ := compile(t, lbSrc, lbScope)
	tables := NewTables()
	for vip := uint64(0); vip < 16; vip++ {
		tables.Set("vip_table", vip, 0xC0A80000+vip)
	}
	paths := plan.Input.Scopes["loadbalancer"].Paths
	ctx := &Context{SwitchID: 2}
	const n = 64
	var want []string
	for _, tier := range []ExecutorTier{TierInterpreter, TierEngine, TierCompiled} {
		dep, err := NewDeployment(plan, tables)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := dep.Engine()
		if err != nil {
			t.Fatal(err)
		}
		x, err := dep.ExecutorFor(tier)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(14))
		pkts := make([]*FlatPacket, n)
		for i := range pkts {
			pkts[i] = eng.Flatten(randomLBPacket(rng))
		}
		if err := x.RunBatch(paths[0], ctx, pkts, 2); err != nil {
			t.Fatalf("%v RunBatch: %v", tier, err)
		}
		if tier == TierInterpreter {
			for _, f := range pkts {
				want = append(want, f.Packet().Summary())
			}
			continue
		}
		for i, f := range pkts {
			if got := f.Packet().Summary(); got != want[i] {
				t.Fatalf("%v packet %d diverges:\n  interp: %s\n  got:    %s", tier, i, want[i], got)
			}
		}
	}
}

// TestExecutorSelection: WithExecutor picks the tier Deployment.Executor
// (and the ReplayTraffic shim) routes through; the default is the engine.
func TestExecutorSelection(t *testing.T) {
	plan, _ := compile(t, lbSrc, lbScope)
	tables := NewTables()

	dep, err := NewDeployment(plan, tables)
	if err != nil {
		t.Fatal(err)
	}
	x, err := dep.Executor()
	if err != nil {
		t.Fatal(err)
	}
	if x.Tier() != TierEngine {
		t.Fatalf("default executor tier = %v, want %v", x.Tier(), TierEngine)
	}

	for _, tier := range []ExecutorTier{TierInterpreter, TierEngine, TierCompiled} {
		dep, err := NewDeployment(plan, tables, WithExecutor(tier))
		if err != nil {
			t.Fatal(err)
		}
		x, err := dep.Executor()
		if err != nil {
			t.Fatal(err)
		}
		if x.Tier() != tier {
			t.Fatalf("WithExecutor(%v) selected %v", tier, x.Tier())
		}
		// ReplayTraffic routes through the selected tier and its stats.
		eng, err := dep.Engine()
		if err != nil {
			t.Fatal(err)
		}
		paths := plan.Input.Scopes["loadbalancer"].Paths
		rng := rand.New(rand.NewSource(15))
		pkts := make([]*FlatPacket, 8)
		for i := range pkts {
			pkts[i] = eng.Flatten(randomLBPacket(rng))
		}
		if err := dep.ReplayTraffic(paths[0], &Context{SwitchID: 1}, pkts, 1); err != nil {
			t.Fatal(err)
		}
		st := x.Stats()
		if st.Tier != tier.String() {
			t.Fatalf("stats tier = %q, want %q", st.Tier, tier.String())
		}
		if st.Packets != 8 || st.Batches != 1 {
			t.Fatalf("%v stats = %+v, want 8 packets / 1 batch", tier, st)
		}
	}

	if _, err := dep.ExecutorFor(ExecutorTier(42)); err == nil {
		t.Fatal("unknown tier must error")
	}
}

// TestExecutorCachedPerTier: repeated Executor calls return the same
// instance, so stats accumulate across calls.
func TestExecutorCachedPerTier(t *testing.T) {
	dep, _, paths := lbDeployment(t)
	x1, err := dep.ExecutorFor(TierCompiled)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := dep.ExecutorFor(TierCompiled)
	if err != nil {
		t.Fatal(err)
	}
	if x1 != x2 {
		t.Fatal("ExecutorFor rebuilt an executor instead of returning the cache")
	}
	eng, err := dep.Engine()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(16))
	f := eng.Flatten(randomLBPacket(rng))
	for i := 0; i < 3; i++ {
		if err := x1.RunPacket(paths[0], &Context{}, f); err != nil {
			t.Fatal(err)
		}
	}
	if st := x2.Stats(); st.Packets != 3 {
		t.Fatalf("stats did not accumulate across the cached instance: %+v", st)
	}
}

// TestExecutorTierString covers the tier names the JSON artifacts key on.
func TestExecutorTierString(t *testing.T) {
	for tier, want := range map[ExecutorTier]string{
		TierInterpreter:  "interpreter",
		TierEngine:       "engine",
		TierCompiled:     "compiled",
		ExecutorTier(42): "tier(42)",
	} {
		if got := tier.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(tier), got, want)
		}
	}
}
