package dataplane

// The unified Executor API. A deployment can execute packets through three
// tiers that implement identical semantics over the same placed programs:
//
//	TierInterpreter — the tree-walking interpreter over map-based Packets
//	                  (exec.go). Slowest; the root oracle.
//	TierEngine      — the bytecode engine over FlatPackets (engine.go).
//	                  Fast; cross-checked against the interpreter.
//	TierCompiled    — the closure-threaded compiled backend (compile.go).
//	                  Fastest; cross-checked against both.
//
// Every tier speaks FlatPacket at the interface (the engine's Layout is the
// deployment-wide packet currency); the interpreter tier converts at the
// boundary. Callers pick a tier with WithExecutor at deployment
// construction, or ask for a specific one with ExecutorFor. The legacy
// entry points (Deployment.RunPath, RunPathEngine, ReplayTraffic,
// dataplane.RunReference) remain as compat shims over these tiers.

import "fmt"

// ExecutorTier names one of the three execution backends.
type ExecutorTier int

const (
	TierInterpreter ExecutorTier = iota
	TierEngine
	TierCompiled
)

func (t ExecutorTier) String() string {
	switch t {
	case TierInterpreter:
		return "interpreter"
	case TierEngine:
		return "engine"
	case TierCompiled:
		return "compiled"
	}
	return fmt.Sprintf("tier(%d)", int(t))
}

// ExecutorStats counts work done through one executor since construction.
type ExecutorStats struct {
	Tier    string `json:"tier"`
	Packets uint64 `json:"packets"`
	Batches uint64 `json:"batches"`
}

// Executor runs packets through one execution tier of a deployment. Like
// the engine it wraps, an Executor is single-caller: one goroutine calls
// RunPacket/RunBatch at a time (RunBatch fans out internally).
type Executor interface {
	// Tier identifies the backend.
	Tier() ExecutorTier
	// RunPacket pushes one packet along a flow path, mutating it in place.
	RunPacket(path []string, ctx *Context, f *FlatPacket) error
	// RunBatch replays a batch along a path across up to workers lanes
	// (workers <= 0 means all CPUs; the interpreter tier runs sequentially
	// regardless). Packets are mutated in place.
	RunBatch(path []string, ctx *Context, pkts []*FlatPacket, workers int) error
	// Stats reports packets and batches executed through this executor.
	Stats() ExecutorStats
}

// interpExecutor adapts the tree-walking interpreter to the Executor
// interface: packets convert to maps at the boundary, and the deployment's
// persistent per-switch globals carry state across packets (the engine
// tiers keep that state in lanes instead).
type interpExecutor struct {
	d       *Deployment
	packets uint64
	batches uint64
}

func (x *interpExecutor) Tier() ExecutorTier { return TierInterpreter }

func (x *interpExecutor) RunPacket(path []string, ctx *Context, f *FlatPacket) error {
	x.packets++
	out, err := x.d.RunPath(path, ctx, f.Packet())
	if err != nil {
		return err
	}
	f.load(out)
	return nil
}

func (x *interpExecutor) RunBatch(path []string, ctx *Context, pkts []*FlatPacket, workers int) error {
	x.batches++
	for _, f := range pkts {
		x.packets++
		out, err := x.d.RunPath(path, ctx, f.Packet())
		if err != nil {
			return err
		}
		f.load(out)
	}
	return nil
}

func (x *interpExecutor) Stats() ExecutorStats {
	return ExecutorStats{Tier: TierInterpreter.String(), Packets: x.packets, Batches: x.batches}
}

// engineExecutor adapts the bytecode engine. Single-packet runs share lane
// 0 with single-worker batches, so stateful programs see one continuous
// stream.
type engineExecutor struct {
	e       *Engine
	packets uint64
	batches uint64
}

func (x *engineExecutor) Tier() ExecutorTier { return TierEngine }

func (x *engineExecutor) RunPacket(path []string, ctx *Context, f *FlatPacket) error {
	if err := x.e.owns(f); err != nil {
		return err
	}
	x.packets++
	x.e.ensureLanes(1)
	x.e.RunPacket(x.e.lanes[0], path, ctx, f)
	return nil
}

func (x *engineExecutor) RunBatch(path []string, ctx *Context, pkts []*FlatPacket, workers int) error {
	if len(pkts) > 0 {
		if err := x.e.owns(pkts[0]); err != nil {
			return err
		}
	}
	x.packets += uint64(len(pkts))
	x.batches++
	x.e.RunBatch(path, ctx, pkts, workers)
	return nil
}

func (x *engineExecutor) Stats() ExecutorStats {
	return ExecutorStats{Tier: TierEngine.String(), Packets: x.packets, Batches: x.batches}
}

// compiledExecutor adapts the closure-threaded compiled backend.
type compiledExecutor struct {
	c       *Compiled
	packets uint64
	batches uint64
}

func (x *compiledExecutor) Tier() ExecutorTier { return TierCompiled }

func (x *compiledExecutor) RunPacket(path []string, ctx *Context, f *FlatPacket) error {
	if err := x.c.eng.owns(f); err != nil {
		return err
	}
	x.packets++
	x.c.ensureLanes(1)
	x.c.RunPacket(x.c.lanes[0], path, ctx, f)
	return nil
}

func (x *compiledExecutor) RunBatch(path []string, ctx *Context, pkts []*FlatPacket, workers int) error {
	if len(pkts) > 0 {
		if err := x.c.eng.owns(pkts[0]); err != nil {
			return err
		}
	}
	x.packets += uint64(len(pkts))
	x.batches++
	x.c.RunBatch(path, ctx, pkts, workers)
	return nil
}

func (x *compiledExecutor) Stats() ExecutorStats {
	return ExecutorStats{Tier: TierCompiled.String(), Packets: x.packets, Batches: x.batches}
}

// DeployOption configures a Deployment at construction.
type DeployOption func(*Deployment)

// WithExecutor selects the execution tier Deployment.Executor (and the
// compat shims routed through it, like ReplayTraffic) will use. The
// default is TierEngine.
func WithExecutor(t ExecutorTier) DeployOption {
	return func(d *Deployment) { d.tier = t }
}

// Executor returns the deployment's selected execution tier (TierEngine
// unless WithExecutor chose otherwise), building it on first use.
func (d *Deployment) Executor() (Executor, error) { return d.ExecutorFor(d.tier) }

// ExecutorFor returns the given tier's executor for this deployment,
// building and caching it on first use. All tiers share the engine's
// Layout, so FlatPackets flow between them freely; stats accumulate per
// tier for the deployment's lifetime.
func (d *Deployment) ExecutorFor(t ExecutorTier) (Executor, error) {
	if int(t) < 0 || int(t) >= len(d.execs) {
		return nil, fmt.Errorf("dataplane: unknown executor tier %v", t)
	}
	if x := d.execs[t]; x != nil {
		return x, nil
	}
	var x Executor
	switch t {
	case TierInterpreter:
		x = &interpExecutor{d: d}
	case TierEngine:
		e, err := d.Engine()
		if err != nil {
			return nil, err
		}
		x = &engineExecutor{e: e}
	case TierCompiled:
		c, err := d.Compiled()
		if err != nil {
			return nil, err
		}
		x = &compiledExecutor{c: c}
	}
	d.execs[t] = x
	return x, nil
}
