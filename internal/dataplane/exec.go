package dataplane

import (
	"fmt"
	"sort"

	"lyra/internal/backend"
	"lyra/internal/encode"
	"lyra/internal/ir"
	"lyra/internal/lang/ast"
)

// execInstr executes one IR instruction against an environment, packet,
// tables, and globals. lookupFn resolves extern lookups (the reference run
// uses the whole table; the distributed run uses the local shard plus
// bridged upstream results).
type execEnv struct {
	env     map[*ir.Var]uint64
	pkt     *Packet
	tables  *Tables
	globals globalStore
	ctx     *Context
	irp     *ir.Program
	// lookup resolves (extern, key) -> (value, hit).
	lookup func(extern string, key uint64) (uint64, bool)
}

func (x *execEnv) value(o ir.Operand) uint64 { return operandValue(o, x.env, x.pkt) }

func (x *execEnv) store(d ir.Dest, v uint64) {
	switch d.Kind {
	case ir.DestVar:
		x.env[d.Var] = mask(v, d.Var.Bits)
	case ir.DestField:
		key := d.Hdr + "." + d.Field
		x.pkt.Fields[key] = mask(v, x.irp.FieldBits[key])
	}
}

// step executes one instruction (guard already checked). It returns an
// error only for malformed IR.
func (x *execEnv) step(in *ir.Instr) error {
	switch in.Op {
	case ir.IAssign:
		x.store(in.Dest, x.value(in.Args[0]))
	case ir.IBin:
		a, b := x.value(in.Args[0]), x.value(in.Args[1])
		x.store(in.Dest, evalBin(in.BinOp, a, b))
	case ir.INot:
		v := uint64(0)
		if x.value(in.Args[0]) == 0 {
			v = 1
		}
		x.store(in.Dest, v)
	case ir.ISelect:
		if x.value(in.Args[0]) != 0 {
			x.store(in.Dest, x.value(in.Args[1]))
		} else {
			x.store(in.Dest, x.value(in.Args[2]))
		}
	case ir.IHash:
		args := make([]uint64, len(in.Args))
		for i, a := range in.Args {
			args[i] = x.value(a)
		}
		x.store(in.Dest, hashOf(in.Table, args, destWidth(in)))
	case ir.ILib:
		if in.Dest.Kind != ir.DestNone {
			x.store(in.Dest, x.ctx.LibValue(in.Table))
		}
	case ir.IHeaderAdd:
		x.pkt.Valid[in.Table] = true
	case ir.IHeaderRemove:
		x.pkt.Valid[in.Table] = false
	case ir.IPacketOp:
		switch in.Table {
		case "drop":
			x.pkt.Dropped = true
		case "forward":
			x.pkt.EgressPort = x.value(in.Args[0])
		case "mirror":
			x.pkt.Mirrored = true
		case "copy_to_cpu":
			x.pkt.ToCPU = true
		}
	case ir.IMember:
		_, hit := x.lookup(in.Table, x.value(in.Args[0]))
		v := uint64(0)
		if hit {
			v = 1
		}
		x.store(in.Dest, v)
	case ir.ILookup:
		v, _ := x.lookup(in.Table, x.value(in.Args[0]))
		x.store(in.Dest, v)
	case ir.IGlobalRead:
		g := x.irp.Global(in.Table)
		if g == nil {
			return fmt.Errorf("dataplane: unknown global %q", in.Table)
		}
		x.store(in.Dest, x.globals.read(in.Table, g.Len, x.value(in.Args[0])))
	case ir.IGlobalWrite:
		g := x.irp.Global(in.Table)
		if g == nil {
			return fmt.Errorf("dataplane: unknown global %q", in.Table)
		}
		x.globals.write(in.Table, g.Len, x.value(in.Args[0]), mask(x.value(in.Args[1]), g.Bits))
	case ir.IExternInsert:
		if len(in.Args) >= 2 {
			x.tables.Set(in.Table, x.value(in.Args[0]), x.value(in.Args[1]))
		}
	}
	return nil
}

func destWidth(in *ir.Instr) int {
	if v := in.WritesVar(); v != nil && v.Bits > 0 {
		return v.Bits
	}
	return 32
}

func evalBin(op ast.Op, a, b uint64) uint64 {
	switch op {
	case ast.OpAdd:
		return a + b
	case ast.OpSub:
		return a - b
	case ast.OpMul:
		return a * b
	case ast.OpDiv:
		if b == 0 {
			return 0
		}
		return a / b
	case ast.OpMod:
		if b == 0 {
			return 0
		}
		return a % b
	case ast.OpAnd:
		return a & b
	case ast.OpOr:
		return a | b
	case ast.OpXor:
		return a ^ b
	case ast.OpShl:
		if b >= 64 {
			return 0
		}
		return a << b
	case ast.OpShr:
		if b >= 64 {
			return 0
		}
		return a >> b
	case ast.OpEq:
		return b2i(a == b)
	case ast.OpNe:
		return b2i(a != b)
	case ast.OpLt:
		return b2i(a < b)
	case ast.OpLe:
		return b2i(a <= b)
	case ast.OpGt:
		return b2i(a > b)
	case ast.OpGe:
		return b2i(a >= b)
	case ast.OpLAnd:
		return b2i(a != 0 && b != 0)
	case ast.OpLOr:
		return b2i(a != 0 || b != 0)
	}
	return 0
}

func b2i(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// RunReference executes the one-big-pipeline semantics of the whole Lyra
// program on one packet: every pipeline's algorithms run in declared order.
// It returns the resulting packet.
func RunReference(irp *ir.Program, tables *Tables, ctx *Context, in *Packet) (*Packet, error) {
	pkt := in.Clone()
	globals := globalStore{}
	for _, pl := range irp.Pipelines {
		for _, algName := range pl.Algorithms {
			a := irp.Algorithm(algName)
			if a == nil {
				return nil, fmt.Errorf("dataplane: pipeline references unknown algorithm %q", algName)
			}
			x := &execEnv{
				env: map[*ir.Var]uint64{}, pkt: pkt, tables: tables,
				globals: globals, ctx: ctx, irp: irp,
				lookup: tables.Lookup,
			}
			for _, instr := range a.Instrs {
				if !guardHolds(instr.Guard, x.env) {
					continue
				}
				if err := x.step(instr); err != nil {
					return nil, err
				}
			}
		}
	}
	return pkt, nil
}

// Deployment is a compiled network ready to forward packets: the plan, the
// per-switch programs, and the shard contents distributed per switch.
type Deployment struct {
	Plan     *encode.Plan
	Programs map[string]*backend.SwitchProgram
	// shardTables maps switch -> extern -> shard contents.
	shardTables map[string]*Tables
	globals     map[string]globalStore
	tables      *Tables

	// Derived state cached at construction: the lowered bytecode engine
	// and compiled backend, the per-tier executors, each extern's sorted
	// entry keys, and each extern's hosting switches in shard-index order.
	// Control-plane mutations (SetSwitchEntry/ClearSwitchTable) no longer
	// drop any of this: the lowered/compiled code is content-independent,
	// so mutations only bump the affected switch's table generation on the
	// engine and lanes rebind that one switch's views lazily. The extern
	// metadata derives from the construction-time tables and the plan,
	// which those calls never touch.
	engine      *Engine
	compiled    *Compiled
	execs       [3]Executor
	tier        ExecutorTier
	externKeys  map[string][]uint64
	externHosts map[string][]string
}

// buildExternMeta computes the per-extern caches in one pass: sorted entry
// keys for every extern present in the control-plane tables, and hosting
// switches ordered by shard index for every placed extern.
func (d *Deployment) buildExternMeta() {
	d.externKeys = map[string][]uint64{}
	for name, es := range d.tables.Externs {
		keys := make([]uint64, 0, len(es.Entries))
		for k := range es.Entries {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		d.externKeys[name] = keys
	}
	type hs struct {
		sw  string
		idx int
	}
	byExtern := map[string][]hs{}
	seen := map[[2]string]bool{}
	for sw, tabs := range d.Plan.Tables {
		for _, pt := range tabs {
			if pt.Extern == nil {
				continue
			}
			key := [2]string{pt.Extern.Name, sw}
			if seen[key] {
				continue
			}
			seen[key] = true
			byExtern[pt.Extern.Name] = append(byExtern[pt.Extern.Name], hs{sw, pt.ShardIndex})
		}
	}
	d.externHosts = map[string][]string{}
	for name, hosts := range byExtern {
		sort.Slice(hosts, func(i, j int) bool {
			if hosts[i].idx != hosts[j].idx {
				return hosts[i].idx < hosts[j].idx
			}
			return hosts[i].sw < hosts[j].sw
		})
		out := make([]string, len(hosts))
		for i, h := range hosts {
			out[i] = h.sw
		}
		d.externHosts[name] = out
	}
}

// entryKeysOf returns an extern's control-plane keys in ascending order,
// cached on the deployment.
func (d *Deployment) entryKeysOf(extern string) []uint64 {
	if d.externKeys == nil {
		d.buildExternMeta()
	}
	return d.externKeys[extern]
}

// hostOrderOf returns an extern's hosting switches ordered by shard index,
// cached on the deployment.
func (d *Deployment) hostOrderOf(extern string) []string {
	if d.externHosts == nil {
		d.buildExternMeta()
	}
	return d.externHosts[extern]
}

// NewDeployment builds a deployment from a solved plan, distributing the
// control-plane entries across extern shards exactly as the generated
// control-plane interface would (fill shard hosts in shard-index order up
// to each shard's allotted size). Options select the execution tier
// (WithExecutor); the default is the bytecode engine.
func NewDeployment(plan *encode.Plan, tables *Tables, opts ...DeployOption) (*Deployment, error) {
	progs, err := backend.Build(plan)
	if err != nil {
		return nil, err
	}
	d := &Deployment{
		Plan:        plan,
		Programs:    progs,
		shardTables: map[string]*Tables{},
		globals:     map[string]globalStore{},
		tables:      tables,
		tier:        TierEngine,
	}
	for _, opt := range opts {
		opt(d)
	}
	for sw := range progs {
		d.shardTables[sw] = NewTables()
		d.globals[sw] = globalStore{}
	}
	d.buildExternMeta()
	// Distribute entries across shards path by path (Appendix B.1): hosts
	// along one flow path partition the table; hosts on parallel paths
	// replicate entries, so every path sees the complete table.
	for extern, byHost := range plan.Shards {
		es := tables.Externs[extern]
		if es == nil {
			continue
		}
		decl := plan.Input.IR.Extern(extern)
		if decl == nil {
			continue
		}
		keys := d.entryKeysOf(extern)
		remaining := map[string]int64{}
		for h, c := range byHost {
			remaining[h] = c
			if d.shardTables[h] == nil {
				d.shardTables[h] = NewTables()
			}
		}
		paths := [][]string{}
		if rs := plan.Input.Scopes[decl.Alg]; rs != nil && len(rs.Paths) > 0 {
			paths = rs.Paths
		} else {
			// PER-SW or single host: each host is its own "path".
			for _, h := range d.hostOrderOf(extern) {
				paths = append(paths, []string{h})
			}
		}
		for _, p := range paths {
			var hosts []string
			for _, sw := range p {
				if _, ok := byHost[sw]; ok {
					hosts = append(hosts, sw)
				}
			}
			if len(hosts) == 0 {
				continue
			}
			for _, k := range keys {
				covered := false
				for _, h := range hosts {
					if _, hit := d.shardTables[h].Lookup(extern, k); hit {
						covered = true
						break
					}
				}
				if covered {
					continue
				}
				placed := false
				for _, h := range hosts {
					if remaining[h] > 0 {
						d.shardTables[h].Set(extern, k, es.Entries[k])
						remaining[h]--
						placed = true
						break
					}
				}
				if !placed {
					// Over-filled table: spill onto the last host so the
					// simulation still sees every entry.
					d.shardTables[hosts[len(hosts)-1]].Set(extern, k, es.Entries[k])
				}
			}
		}
	}
	return d, nil
}

// RunPath pushes a packet along a flow path through the deployed network,
// executing each switch's placed program and carrying bridge variables
// between hops. The ctx applies identically at every hop so results are
// comparable with RunReference.
func (d *Deployment) RunPath(path []string, ctx *Context, in *Packet) (*Packet, error) {
	return d.RunPathWithContexts(path, func(string) *Context { return ctx }, in)
}

// RunPathWithContexts is RunPath with a per-switch environment: each hop
// sees its own switch id, timestamps, and queue state, the way real INT
// metadata differs per device.
func (d *Deployment) RunPathWithContexts(path []string, ctxOf func(sw string) *Context, in *Packet) (*Packet, error) {
	pkt := in.Clone()
	irp := d.Plan.Input.IR
	for _, sw := range path {
		ctx := ctxOf(sw)
		if ctx == nil {
			ctx = &Context{}
		}
		sp := d.Programs[sw]
		if sp == nil {
			continue // transit switch with nothing deployed
		}
		env := map[*ir.Var]uint64{}
		// Import bridged variables.
		for _, bv := range sp.Imports {
			env[bv.Var] = pkt.Bridge[backend.BridgeFieldName(bv.Alg, bv.Var)]
		}
		// Shard gating (Algorithm 2): every instruction belonging to a
		// downstream shard table is skipped when the bridged hit signal
		// says an upstream shard already resolved the lookup. The gate is
		// snapshotted at switch entry so a local hit does not suppress the
		// rest of its own table.
		tableOf := map[int]string{}
		for _, pt := range sp.Tables {
			for _, ti := range pt.Table.Instrs() {
				tableOf[ti.ID] = pt.Name
			}
		}
		gateAtEntry := map[string]uint64{}
		for name, hitVar := range sp.HitGuards {
			gateAtEntry[name] = env[hitVar]
		}
		x := &execEnv{
			env: env, pkt: pkt, tables: d.shardTables[sw],
			globals: d.globals[sw], ctx: ctx, irp: irp,
			lookup: d.shardTables[sw].Lookup,
		}
		for _, instr := range sp.Instrs {
			if !guardHolds(instr.Guard, env) {
				continue
			}
			if tn, ok := tableOf[instr.ID]; ok {
				if _, gated := sp.HitGuards[tn]; gated && gateAtEntry[tn] != 0 {
					continue
				}
			}
			if err := x.step(instr); err != nil {
				return nil, err
			}
		}
		// Export bridge variables for downstream hops.
		for _, bv := range sp.Exports {
			pkt.Bridge[backend.BridgeFieldName(bv.Alg, bv.Var)] = env[bv.Var]
		}
	}
	return pkt, nil
}

// SetSwitchEntry installs a control-plane entry into one switch's local
// shard only. PER-SW deployments use this to configure role-specific
// tables differently per switch (e.g. the INT sink filter is populated
// only on egress ToRs, Figure 1). Only the affected switch's lowered
// table state is invalidated (a per-switch generation bump; lanes rebind
// that switch's views lazily) — the engine and compiled backend are never
// re-lowered for a table mutation.
func (d *Deployment) SetSwitchEntry(sw, extern string, key, value uint64) {
	if d.shardTables[sw] == nil {
		d.shardTables[sw] = NewTables()
	}
	d.shardTables[sw].Set(extern, key, value)
	if d.engine != nil {
		d.engine.invalidateTables(sw)
	}
}

// ClearSwitchTable removes an extern's entries from one switch,
// invalidating only that switch's lowered table state.
func (d *Deployment) ClearSwitchTable(sw, extern string) {
	if t := d.shardTables[sw]; t != nil {
		delete(t.Externs, extern)
	}
	if d.engine != nil {
		d.engine.invalidateTables(sw)
	}
}

// Engine returns the deployment's bytecode engine, lowering the placed
// programs on first use. The engine survives control-plane mutations:
// SetSwitchEntry/ClearSwitchTable bump only the affected switch's table
// generation.
func (d *Deployment) Engine() (*Engine, error) {
	if d.engine == nil {
		e, err := NewEngine(d)
		if err != nil {
			return nil, err
		}
		d.engine = e
	}
	return d.engine, nil
}

// Compiled returns the deployment's closure-threaded compiled backend,
// translating the engine's lowered units on first use. Like the engine it
// survives control-plane mutations.
func (d *Deployment) Compiled() (*Compiled, error) {
	if d.compiled == nil {
		e, err := d.Engine()
		if err != nil {
			return nil, err
		}
		d.compiled = CompileEngine(e)
	}
	return d.compiled, nil
}

// RunPathEngine is RunPath executed on the compiled bytecode engine: a
// fresh lane (zeroed per-switch globals, copy-on-write table views bound
// to the deployment's current shard contents) pushes the packet along the
// path. Given identical starting state it is byte-identical to RunPath;
// the reference interpreter remains the oracle it is checked against.
func (d *Deployment) RunPathEngine(path []string, ctx *Context, in *Packet) (*Packet, error) {
	return d.RunPathEngineWithContexts(path, func(string) *Context { return ctx }, in)
}

// RunPathEngineWithContexts is RunPathEngine with a per-switch environment.
func (d *Deployment) RunPathEngineWithContexts(path []string, ctxOf func(sw string) *Context, in *Packet) (*Packet, error) {
	e, err := d.Engine()
	if err != nil {
		return nil, err
	}
	l := e.NewLane()
	f := e.Flatten(in)
	e.RunPacketContexts(l, path, ctxOf, f)
	return f.Packet(), nil
}

// RunPathEngineTraced is RunPathEngine with a per-hop packet snapshot,
// mirroring RunPathTraced: one lane persists across the hops so stateful
// switches behave as in a single path run.
func (d *Deployment) RunPathEngineTraced(path []string, ctx *Context, in *Packet) (*Packet, []HopSnapshot, error) {
	e, err := d.Engine()
	if err != nil {
		return nil, nil, err
	}
	l := e.NewLane()
	f := e.Flatten(in)
	trace := make([]HopSnapshot, 0, len(path))
	for _, sw := range path {
		e.RunPacket(l, []string{sw}, ctx, f)
		trace = append(trace, HopSnapshot{Switch: sw, Summary: f.Packet().Summary()})
	}
	return f.Packet(), trace, nil
}

// RunPathCompiled is RunPath executed on the closure-threaded compiled
// backend: the same semantics as RunPathEngine, one dispatch tier faster.
func (d *Deployment) RunPathCompiled(path []string, ctx *Context, in *Packet) (*Packet, error) {
	return d.RunPathCompiledWithContexts(path, func(string) *Context { return ctx }, in)
}

// RunPathCompiledWithContexts is RunPathCompiled with a per-switch
// environment.
func (d *Deployment) RunPathCompiledWithContexts(path []string, ctxOf func(sw string) *Context, in *Packet) (*Packet, error) {
	c, err := d.Compiled()
	if err != nil {
		return nil, err
	}
	l := c.eng.NewLane()
	f := c.eng.Flatten(in)
	c.RunPacketContexts(l, path, ctxOf, f)
	return f.Packet(), nil
}

// ReplayTraffic replays a batch of engine packets along a path, sharded
// across workers. It is a compat shim over the deployment's selected
// Executor tier (TierEngine by default; see WithExecutor). Packets are
// mutated in place and must come from this deployment's engine layout.
func (d *Deployment) ReplayTraffic(path []string, ctx *Context, pkts []*FlatPacket, workers int) error {
	x, err := d.Executor()
	if err != nil {
		return err
	}
	return x.RunBatch(path, ctx, pkts, workers)
}
