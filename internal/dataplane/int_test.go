package dataplane

import (
	"testing"
)

// TestINTEndToEnd reproduces Figure 1(b): a packet entering at ToR3
// traverses Agg3 and leaves at ToR4; the ingress switch inserts the probe
// header, every hop appends its metadata and bumps the hop count, and the
// egress switch mirrors the packet to the collector and strips the probe.
// Per-switch control-plane state assigns the roles: the source watch list
// exists only on ToR3, the transit filter only on Agg3, the sink filter
// only on ToR4.
func TestINTEndToEnd(t *testing.T) {
	src := `
header_type ipv4_t { bit[8] ttl; bit[32] src_ip; bit[32] dst_ip; }
header ipv4_t ipv4;
header_type probe_t { bit[8] hop_count; bit[8] msg_type; }
header probe_t probe;
header_type md_t { bit[32] switch_id; bit[32] latency; }
header md_t int_md;
pipeline[INT]{int_in -> int_transit -> int_out};

algorithm int_in {
  extern list<bit[32] ip>[64] watch_src;
  if (ipv4.src_ip in watch_src) {
    add_header(probe);
    probe.msg_type = 1;
    probe.hop_count = 1;
  }
}
algorithm int_transit {
  extern dict<bit[8] msg, bit[8] on>[4] transit_filter;
  if (probe.msg_type in transit_filter) {
    probe.hop_count = probe.hop_count + 1;
    add_header(int_md);
    int_md.switch_id = get_switch_id();
  }
}
algorithm int_out {
  extern dict<bit[8] msg, bit[8] on>[4] sink_filter;
  if (probe.msg_type in sink_filter) {
    probe.hop_count = probe.hop_count + 1;
    mirror();
    remove_header(probe);
  }
}
`
	scopeText := `
int_in:      [ ToR* | PER-SW | - ]
int_transit: [ Agg* | PER-SW | - ]
int_out:     [ ToR* | PER-SW | - ]
`
	plan, irp := compile(t, src, scopeText)
	_ = irp
	dep, err := NewDeployment(plan, NewTables())
	if err != nil {
		t.Fatal(err)
	}
	// Role assignment via per-switch control-plane entries.
	dep.SetSwitchEntry("ToR3", "watch_src", 0x0A000001, 1)
	dep.SetSwitchEntry("Agg3", "transit_filter", 1, 1)
	dep.SetSwitchEntry("ToR4", "sink_filter", 1, 1)
	// The deployment replicated full (empty) copies everywhere else: clear
	// any copies installed by the default distribution.
	for _, sw := range []string{"ToR1", "ToR2", "ToR4"} {
		dep.ClearSwitchTable(sw, "watch_src")
	}
	for _, sw := range []string{"ToR1", "ToR2", "ToR3"} {
		dep.ClearSwitchTable(sw, "sink_filter")
	}

	ctx := &Context{SwitchID: 42}
	pkt := NewPacket()
	pkt.Valid["ipv4"] = true
	pkt.Fields["ipv4.src_ip"] = 0x0A000001
	pkt.Fields["ipv4.dst_ip"] = 0x0B000001

	out, err := dep.RunPath([]string{"ToR3", "Agg3", "ToR4"}, ctx, pkt)
	if err != nil {
		t.Fatal(err)
	}
	if out.Valid["probe"] {
		t.Error("egress switch should strip the probe header")
	}
	if !out.Valid["int_md"] {
		t.Error("transit metadata missing")
	}
	if out.Fields["int_md.switch_id"] != 42 {
		t.Errorf("switch_id = %d", out.Fields["int_md.switch_id"])
	}
	if !out.Mirrored {
		t.Error("egress switch must mirror to the collector")
	}
	// hop_count reached 3 before stripping (1 at ingress + transit + egress).
	if out.Fields["probe.hop_count"] != 3 {
		t.Errorf("hop_count = %d, want 3", out.Fields["probe.hop_count"])
	}

	// A packet from an unwatched source is untouched.
	quiet := NewPacket()
	quiet.Valid["ipv4"] = true
	quiet.Fields["ipv4.src_ip"] = 0x0C000099
	out, err = dep.RunPath([]string{"ToR3", "Agg3", "ToR4"}, ctx, quiet)
	if err != nil {
		t.Fatal(err)
	}
	if out.Valid["probe"] || out.Mirrored || out.Valid["int_md"] {
		t.Errorf("unwatched packet modified: %s", out.Summary())
	}
}

// TestINTPerSwitchContexts: each hop stamps its own switch id — the
// metadata observed at the egress reflects the device that wrote it last
// (with one metadata instance; real INT grows a stack, §8).
func TestINTPerSwitchContexts(t *testing.T) {
	src := `
header_type h_t { bit[32] x; }
header h_t h;
header_type md_t { bit[32] switch_id; }
header md_t md;
pipeline[P]{stamp};
algorithm stamp {
  add_header(md);
  md.switch_id = get_switch_id();
}
`
	plan, _ := compile(t, src, "stamp: [ ToR*,Agg* | PER-SW | - ]")
	dep, err := NewDeployment(plan, NewTables())
	if err != nil {
		t.Fatal(err)
	}
	ids := map[string]uint64{"ToR3": 33, "Agg3": 77, "ToR4": 44}
	pkt := NewPacket()
	pkt.Valid["h"] = true
	out, err := dep.RunPathWithContexts([]string{"ToR3", "Agg3", "ToR4"},
		func(sw string) *Context { return &Context{SwitchID: ids[sw]} }, pkt)
	if err != nil {
		t.Fatal(err)
	}
	if out.Fields["md.switch_id"] != 44 {
		t.Errorf("switch_id = %d, want the egress ToR4's 44", out.Fields["md.switch_id"])
	}
}
