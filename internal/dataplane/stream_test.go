package dataplane

import (
	"math/rand"
	"testing"
)

// streamSrc is the stream suite's stateful workload: a per-flow sequence
// counter in a register array plus a first-packet-learned connection
// table, both keyed by flow.id. Flow ids stay below 16 in every trace so
// the register index (id & 15) is the id itself — the lane-affinity
// contract (state interactions confined to equal flow keys) holds for
// FlowKey = flow.id.
const streamSrc = `
header_type flow_t { bit[32] id; bit[32] a; bit[32] seq; bit[32] out; }
header flow_t flow;
pipeline[S]{track};
algorithm track {
  extern dict<bit[32] k, bit[32] v>[64] conn;
  global bit[32][16] cnt;
  bit[32] idx;
  idx = flow.id & 15;
  cnt[idx] = cnt[idx] + 1;
  flow.seq = cnt[idx];
  if (flow.id in conn) {
    flow.out = conn[flow.id];
  } else {
    insert(conn, flow.id, flow.a);
    flow.out = flow.a;
  }
}
`

const streamScope = `track: [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]`

func streamDeployment(t testing.TB) (*Deployment, [][]string) {
	t.Helper()
	plan, _ := compile(t, streamSrc, streamScope)
	dep, err := NewDeployment(plan, NewTables())
	if err != nil {
		t.Fatalf("deployment: %v", err)
	}
	return dep, plan.Input.Scopes["track"].Paths
}

// streamTrace builds a flow-ordered trace: nFlows interleaved flows with
// ids in [0,16), each packet carrying a random payload field.
func streamTrace(rng *rand.Rand, nFlows, nPkts int) []TraceRecord {
	if nFlows > 16 {
		nFlows = 16
	}
	recs := make([]TraceRecord, nPkts)
	for i := range recs {
		recs[i] = TraceRecord{
			TS: uint64(100 + i*10),
			Fields: map[string]uint64{
				"flow.id": uint64(rng.Intn(nFlows)),
				"flow.a":  uint64(rng.Intn(1 << 20)),
			},
			Valid: []string{"flow"},
		}
	}
	return recs
}

// feedChunked feeds a trace through a stream in random-size chunks with
// occasional explicit flushes — the shape a long-lived capture replay has.
func feedChunked(t *testing.T, s *Stream, pkts []*FlatPacket, rng *rand.Rand) {
	t.Helper()
	for off := 0; off < len(pkts); {
		n := 1 + rng.Intn(7)
		if off+n > len(pkts) {
			n = len(pkts) - off
		}
		if err := s.Feed(pkts[off : off+n]...); err != nil {
			t.Fatalf("feed: %v", err)
		}
		off += n
		if rng.Intn(4) == 0 {
			s.Flush()
		}
	}
	s.Close()
}

// TestStreamVsOneShot is the core streaming property: replaying a chunked
// flow-ordered trace through OpenStream — any tier, any lane count — is
// byte-identical per packet to a one-shot single-worker RunBatch over the
// concatenated trace.
func TestStreamVsOneShot(t *testing.T) {
	plan, _ := compile(t, streamSrc, streamScope)
	paths := plan.Input.Scopes["track"].Paths
	ctx := &Context{SwitchID: 3, IngressTS: 50}
	rng := rand.New(rand.NewSource(11))
	recs := streamTrace(rng, 12, 300)

	for _, path := range paths {
		// Reference: one-shot engine batch, one lane, fresh deployment.
		refDep, err := NewDeployment(plan, NewTables())
		if err != nil {
			t.Fatal(err)
		}
		refEng, err := refDep.Engine()
		if err != nil {
			t.Fatal(err)
		}
		ref := refEng.FlattenTrace(recs, "")
		refEng.RunBatch(path, ctx, ref, 1)

		for _, tier := range []ExecutorTier{TierInterpreter, TierEngine, TierCompiled} {
			for _, lanes := range []int{1, 4} {
				dep, err := NewDeployment(plan, NewTables())
				if err != nil {
					t.Fatal(err)
				}
				eng, err := dep.Engine()
				if err != nil {
					t.Fatal(err)
				}
				key, err := eng.FlowKeyField("flow.id")
				if err != nil {
					t.Fatal(err)
				}
				s, err := dep.OpenStream(path, StreamOptions{
					Tier: tier, Lanes: lanes, BatchSize: 16, FlowKey: key, Ctx: ctx,
				})
				if err != nil {
					t.Fatal(err)
				}
				got := eng.FlattenTrace(recs, "")
				feedChunked(t, s, got, rand.New(rand.NewSource(int64(lanes)*7+int64(tier))))
				for i := range got {
					if diff := DiffPackets(ref[i].Packet(), got[i].Packet(), nil); len(diff) > 0 {
						t.Fatalf("tier %v lanes %d path %v packet %d diverges from one-shot: %v",
							tier, lanes, path, i, diff)
					}
				}
				if st := s.Stats(); st.Packets != uint64(len(recs)) {
					t.Fatalf("stats counted %d packets, want %d", st.Packets, len(recs))
				}
			}
		}
	}
}

// TestStreamBackpressure pins the memory bound: Feed never holds more
// than Lanes×BatchSize packets, and a full lane forces a drain round.
func TestStreamBackpressure(t *testing.T) {
	dep, paths := streamDeployment(t)
	eng, err := dep.Engine()
	if err != nil {
		t.Fatal(err)
	}
	key, err := eng.FlowKeyField("flow.id")
	if err != nil {
		t.Fatal(err)
	}
	s, err := dep.OpenStream(paths[0], StreamOptions{Lanes: 2, BatchSize: 8, FlowKey: key})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	pkts := eng.FlattenTrace(streamTrace(rng, 6, 200), "")
	for _, f := range pkts {
		if err := s.Feed(f); err != nil {
			t.Fatal(err)
		}
		held := 0
		for _, p := range s.pend {
			held += len(p)
		}
		if held > 2*8 {
			t.Fatalf("stream holds %d packets, bound is %d", held, 2*8)
		}
	}
	st := s.Stats()
	if st.Drains == 0 {
		t.Fatal("200 packets through 2×8 buffers never forced a drain")
	}
	s.Close()
	if st := s.Stats(); st.Packets != 200 {
		t.Fatalf("counted %d packets, want 200", st.Packets)
	}
	if err := s.Feed(pkts[0]); err == nil {
		t.Fatal("Feed after Close should fail")
	}
}

// TestStreamStateReadout checks the per-lane state inspection API against
// ground truth computed from the trace: learned connection entries land on
// the flow's lane, per-flow counters match packet counts, and MergedGlobal
// reassembles the full register array across lanes.
func TestStreamStateReadout(t *testing.T) {
	dep, paths := streamDeployment(t)
	eng, err := dep.Engine()
	if err != nil {
		t.Fatal(err)
	}
	key, err := eng.FlowKeyField("flow.id")
	if err != nil {
		t.Fatal(err)
	}
	path := paths[0]
	s, err := dep.OpenStream(path, StreamOptions{Lanes: 3, BatchSize: 8, FlowKey: key, Tier: TierEngine})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	recs := streamTrace(rng, 8, 160)
	pkts := eng.FlattenTrace(recs, "")
	if err := s.Feed(pkts...); err != nil {
		t.Fatal(err)
	}
	s.Close()

	counts := map[uint64]uint64{}
	firstA := map[uint64]uint64{}
	for _, r := range recs {
		id := r.Fields["flow.id"]
		counts[id]++
		if _, ok := firstA[id]; !ok {
			firstA[id] = r.Fields["flow.a"]
		}
	}
	// The conn extern lives on whichever path switches host its shards;
	// check the union of the path's lane-local views.
	for id, want := range firstA {
		lane := s.LaneOf(id)
		var got uint64
		found := false
		for _, sw := range path {
			if v, ok, err := s.TableEntry(lane, sw, "conn", id); err == nil && ok {
				got, found = v, true
				break
			}
		}
		if !found || got != want {
			t.Fatalf("flow %d: learned conn entry = (%d,%v), want (%d,true)", id, got, found, want)
		}
	}
	// cnt[id] accumulates on the switch unit that owns the write; sum
	// MergedGlobal across path switches to get trace-wide totals.
	for id, want := range counts {
		var got uint64
		for _, sw := range path {
			m, err := s.MergedGlobal(sw, "cnt")
			if err != nil {
				continue
			}
			got += m[id]
		}
		if got != want {
			t.Fatalf("flow %d: merged cnt = %d, want %d", id, got, want)
		}
		lane := s.LaneOf(id)
		var perLane uint64
		for _, sw := range path {
			if v, err := s.GlobalAt(lane, sw, "cnt", id); err == nil {
				perLane += v
			}
		}
		if perLane != want {
			t.Fatalf("flow %d: lane %d cnt = %d, want %d", id, lane, perLane, want)
		}
	}
}

// TestStreamZeroAlloc is the streaming acceptance gate: once lanes are
// warm (all flows learned), Feed through the engine and compiled tiers
// allocates nothing per packet at Lanes=1, and only the per-drain worker
// fan-out at Lanes=4.
func TestStreamZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	for _, tier := range []ExecutorTier{TierEngine, TierCompiled} {
		dep, paths := streamDeployment(t)
		eng, err := dep.Engine()
		if err != nil {
			t.Fatal(err)
		}
		key, err := eng.FlowKeyField("flow.id")
		if err != nil {
			t.Fatal(err)
		}
		s, err := dep.OpenStream(paths[0], StreamOptions{Tier: tier, Lanes: 1, BatchSize: 32, FlowKey: key})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(5))
		tmpl := eng.FlattenTrace(streamTrace(rng, 16, 64), "")
		batch := make([]*FlatPacket, len(tmpl))
		for i := range batch {
			batch[i] = eng.NewFlatPacket()
		}
		refresh := func() {
			for i := range batch {
				batch[i].CopyFrom(tmpl[i])
			}
		}
		for i := 0; i < 4; i++ { // warm: learn all flows, size COW maps
			refresh()
			if err := s.Feed(batch...); err != nil {
				t.Fatal(err)
			}
			s.Flush()
		}
		allocs := testing.AllocsPerRun(50, func() {
			refresh()
			if err := s.Feed(batch...); err != nil {
				t.Fatal(err)
			}
			s.Flush()
		})
		if perPkt := allocs / float64(len(batch)); perPkt != 0 {
			t.Fatalf("%v stream steady state allocates %.3f per packet, want 0", tier, perPkt)
		}
		s.Close()
	}
}

// TestStreamMultiLaneAllocBound pins the parallel drain overhead to
// nothing: multi-lane streams dispatch drains to persistent parked
// workers (a channel send plus a WaitGroup count), so even at Lanes=4
// the steady state allocates zero per packet.
func TestStreamMultiLaneAllocBound(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	dep, paths := streamDeployment(t)
	eng, err := dep.Engine()
	if err != nil {
		t.Fatal(err)
	}
	key, err := eng.FlowKeyField("flow.id")
	if err != nil {
		t.Fatal(err)
	}
	s, err := dep.OpenStream(paths[0], StreamOptions{Tier: TierEngine, Lanes: 4, BatchSize: 64, FlowKey: key})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	tmpl := eng.FlattenTrace(streamTrace(rng, 16, 256), "")
	batch := make([]*FlatPacket, len(tmpl))
	for i := range batch {
		batch[i] = eng.NewFlatPacket()
	}
	refresh := func() {
		for i := range batch {
			batch[i].CopyFrom(tmpl[i])
		}
	}
	for i := 0; i < 4; i++ {
		refresh()
		if err := s.Feed(batch...); err != nil {
			t.Fatal(err)
		}
		s.Flush()
	}
	allocs := testing.AllocsPerRun(20, func() {
		refresh()
		if err := s.Feed(batch...); err != nil {
			t.Fatal(err)
		}
		s.Flush()
	})
	if perPkt := allocs / float64(len(batch)); perPkt != 0 {
		t.Fatalf("4-lane stream allocates %.3f per packet, want 0", perPkt)
	}
	s.Close()
}
