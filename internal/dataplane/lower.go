package dataplane

// This file is the compile-to-bytecode lowering pass: it flattens the
// tree-walking interpreter's inputs — an ir.Program for the reference
// one-big-pipeline semantics, and each placed backend.SwitchProgram for the
// distributed execution — into linear instruction arrays over dense integer
// slots. The hot loop (engine.go) then never touches a map, a string key,
// or a *ir.Var pointer: SSA variables become register indices (ir.SlotMap),
// header fields and validity bits become packet-array offsets, extern
// tables and global register arrays become handle indices, guards become
// precomputed (register, polarity) ranges, and the shard hit-gating of
// Algorithm 2 becomes a per-instruction gate index resolved at lowering
// time instead of a per-packet map build.

import (
	"fmt"
	"sort"

	"lyra/internal/backend"
	"lyra/internal/ir"
	"lyra/internal/lang/ast"
)

// Bytecode opcodes. Packet operations are specialized into one opcode each
// so the hot loop never string-compares the IR's Table field.
const (
	bAssign uint8 = iota
	bBin
	bNot
	bSelect
	bHash
	bLib
	bHeaderAdd
	bHeaderRemove
	bDrop
	bForward
	bMirror
	bToCPU
	bMember
	bLookup
	bGlobalRead
	bGlobalWrite
	bInsert

	// Superinstructions (peephole-fused hot pairs, see fuseUnit). Each
	// performs both component stores in original order, so fusion is
	// semantics-preserving even when later code reads the intermediate
	// register.
	bHashLookup // bHash feeding a bLookup keyed on the hash result
	bHashMember // bHash feeding a bMember keyed on the hash result
	bBinSelect  // bBin feeding a bSelect conditioned on the bin result
)

// Destination kinds.
const (
	dNone uint8 = iota
	dReg
	dField
)

// Operand kinds.
const (
	oConst uint8 = iota
	oReg
	oField
)

// Library-call codes (ILib lowered against Context).
const (
	libUnknown int32 = iota
	libSwitchID
	libIngressTS
	libEgressTS
	libQueueLen
	libQueueTime
	libIngressPort
)

func libCode(name string) int32 {
	switch name {
	case "get_switch_id":
		return libSwitchID
	case "get_ingress_timestamp":
		return libIngressTS
	case "get_egress_timestamp":
		return libEgressTS
	case "get_queue_len":
		return libQueueLen
	case "get_queue_time":
		return libQueueTime
	case "get_ingress_port":
		return libIngressPort
	}
	return libUnknown
}

// opRef is a resolved operand: a constant, a register slot, or a packet
// field slot.
type opRef struct {
	kind uint8
	idx  int32
	c    uint64
}

// guardRef is one precompiled guard conjunct: the predicate's register slot
// and its required polarity.
type guardRef struct {
	reg int32
	neg bool
}

// binstr is one lowered instruction. Variable-length parts (guard terms,
// hash arguments) live in the unit's flat side arrays, referenced by
// [off,end) ranges, so the instruction array itself is a dense struct
// slice.
type binstr struct {
	op       uint8
	destKind uint8
	crc16    bool   // bHash: fold the 64-bit FNV state to 16 bits
	binop    ast.Op // bBin only
	dest     int32  // register or field slot
	destMask uint64 // width mask applied on store
	a, b, c  opRef
	table    int32  // extern/global/valid-slot/lib-code index, per op
	auxMask  uint64 // bHash: output width; bGlobalWrite: element width
	gate     int32  // shard-gate index, -1 when ungated
	guardOff int32
	guardEnd int32
	argsOff  int32 // bHash operands in unit.args; fused select operands
	argsEnd  int32

	// g1reg/g1neg inline the common single-conjunct guard so the hot loop
	// skips the side-array walk (-1 = no inlined guard; fall back to the
	// [guardOff,guardEnd) range). Set by fuseUnit.
	g1reg int32
	g1neg bool

	// Second destination of a fused superinstruction (the downstream
	// instruction's store). dNone for plain opcodes.
	dest2     int32
	dest2Kind uint8
	dest2Mask uint64
}

// globalSpec is a lowered global register array: its declared length and
// element-width mask.
type globalSpec struct {
	name   string
	length int
	mask   uint64
}

// Layout assigns the dense slot universe shared by every compiled unit of
// one engine: packet fields, header validity bits, bridge variables,
// extern table handles, and global arrays. FlatPackets are sized from it.
type Layout struct {
	fieldSlot  map[string]int
	fieldName  []string
	fieldMask  []uint64
	validSlot  map[string]int
	validName  []string
	bridgeSlot map[string]int
	bridgeName []string
	externSlot map[string]int
	externName []string
	globalSlot map[string]int
	globals    []globalSpec
}

func newLayout() *Layout {
	return &Layout{
		fieldSlot:  map[string]int{},
		validSlot:  map[string]int{},
		bridgeSlot: map[string]int{},
		externSlot: map[string]int{},
		globalSlot: map[string]int{},
	}
}

// maskBits returns the store mask for a bit width, with the interpreter's
// convention that 0 or >=64 leaves values untouched.
func maskBits(bits int) uint64 {
	if bits <= 0 || bits >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(bits) - 1
}

func (l *Layout) ensureField(name string, bits int) int {
	if s, ok := l.fieldSlot[name]; ok {
		return s
	}
	s := len(l.fieldName)
	l.fieldSlot[name] = s
	l.fieldName = append(l.fieldName, name)
	l.fieldMask = append(l.fieldMask, maskBits(bits))
	return s
}

func (l *Layout) ensureValid(name string) int {
	if s, ok := l.validSlot[name]; ok {
		return s
	}
	s := len(l.validName)
	l.validSlot[name] = s
	l.validName = append(l.validName, name)
	return s
}

func (l *Layout) ensureBridge(name string) int {
	if s, ok := l.bridgeSlot[name]; ok {
		return s
	}
	s := len(l.bridgeName)
	l.bridgeSlot[name] = s
	l.bridgeName = append(l.bridgeName, name)
	return s
}

func (l *Layout) ensureExtern(name string) int {
	if s, ok := l.externSlot[name]; ok {
		return s
	}
	s := len(l.externName)
	l.externSlot[name] = s
	l.externName = append(l.externName, name)
	return s
}

func (l *Layout) ensureGlobal(g *ir.GlobalDecl) int {
	if s, ok := l.globalSlot[g.Name]; ok {
		return s
	}
	s := len(l.globals)
	l.globalSlot[g.Name] = s
	l.globals = append(l.globals, globalSpec{name: g.Name, length: g.Len, mask: maskBits(g.Bits)})
	return s
}

// seed pre-assigns every declared field, header, extern, and global in
// sorted order so slot numbering is deterministic regardless of lowering
// order.
func (l *Layout) seed(irp *ir.Program) {
	names := make([]string, 0, len(irp.FieldBits))
	for f := range irp.FieldBits {
		names = append(names, f)
	}
	sort.Strings(names)
	for _, f := range names {
		l.ensureField(f, irp.FieldBits[f])
	}
	names = names[:0]
	for h := range irp.HeaderBits {
		names = append(names, h)
	}
	sort.Strings(names)
	for _, h := range names {
		l.ensureValid(h)
	}
	for _, a := range irp.Algorithms {
		for _, e := range a.Externs {
			l.ensureExtern(e.Name)
		}
		for _, g := range a.Globals {
			l.ensureGlobal(g)
		}
	}
}

// compiledUnit is one lowered instruction stream: the whole-program
// reference pipeline, or one switch's placed program.
type compiledUnit struct {
	name     string // "" for the reference unit, else the switch
	stateIdx int    // lane state (globals + table views) this unit runs on
	numRegs  int
	code     []binstr
	guards   []guardRef
	args     []opRef
	imports  []bridgeMove
	exports  []bridgeMove
	gates    []int32 // gate index -> register slot of the bridged hit var
}

// bridgeMove copies one variable between the bridge header and a register.
type bridgeMove struct {
	reg  int32
	slot int32
}

// lowerer shares the layout and program context across all units of one
// engine.
type lowerer struct {
	irp *ir.Program
	lay *Layout
}

func (lo *lowerer) opref(o ir.Operand, slot func(*ir.Var) int32) opRef {
	switch o.Kind {
	case ir.OpdConst:
		return opRef{kind: oConst, c: o.Const}
	case ir.OpdVar:
		return opRef{kind: oReg, idx: slot(o.Var)}
	default:
		key := o.Hdr + "." + o.Field
		return opRef{kind: oField, idx: int32(lo.lay.ensureField(key, lo.irp.FieldBits[key]))}
	}
}

// lowerInstrs appends the bytecode for one IR instruction stream to u.
// gateOf resolves an instruction ID to its shard-gate index (-1 ungated);
// nil means no gating (the reference pipeline).
func (lo *lowerer) lowerInstrs(u *compiledUnit, instrs []*ir.Instr,
	slot func(*ir.Var) int32, gateOf func(id int) int32) error {
	for _, in := range instrs {
		b := binstr{gate: -1, g1reg: -1, guardOff: int32(len(u.guards)), argsOff: int32(len(u.args))}
		for _, g := range in.Guard {
			u.guards = append(u.guards, guardRef{reg: slot(g.Var), neg: g.Neg})
		}
		b.guardEnd = int32(len(u.guards))
		b.argsEnd = b.argsOff
		if gateOf != nil {
			b.gate = gateOf(in.ID)
		}
		// Destination (IHash computes its own width below; the store mask
		// is independent of it, mirroring execEnv.store).
		switch in.Dest.Kind {
		case ir.DestVar:
			b.destKind = dReg
			b.dest = slot(in.Dest.Var)
			b.destMask = maskBits(in.Dest.Var.Bits)
		case ir.DestField:
			key := in.Dest.Hdr + "." + in.Dest.Field
			s := lo.lay.ensureField(key, lo.irp.FieldBits[key])
			b.destKind = dField
			b.dest = int32(s)
			b.destMask = lo.lay.fieldMask[s]
		default:
			b.destKind = dNone
		}
		switch in.Op {
		case ir.IAssign:
			b.op = bAssign
			b.a = lo.opref(in.Args[0], slot)
		case ir.IBin:
			b.op = bBin
			b.binop = in.BinOp
			b.a = lo.opref(in.Args[0], slot)
			b.b = lo.opref(in.Args[1], slot)
		case ir.INot:
			b.op = bNot
			b.a = lo.opref(in.Args[0], slot)
		case ir.ISelect:
			b.op = bSelect
			b.a = lo.opref(in.Args[0], slot)
			b.b = lo.opref(in.Args[1], slot)
			b.c = lo.opref(in.Args[2], slot)
		case ir.IHash:
			b.op = bHash
			b.crc16 = in.Table == "crc16_hash"
			b.auxMask = maskBits(destWidth(in))
			for _, a := range in.Args {
				u.args = append(u.args, lo.opref(a, slot))
			}
			b.argsEnd = int32(len(u.args))
		case ir.ILib:
			if in.Dest.Kind == ir.DestNone {
				continue // the interpreter discards resultless lib calls
			}
			b.op = bLib
			b.table = libCode(in.Table)
		case ir.IHeaderAdd:
			b.op = bHeaderAdd
			b.table = int32(lo.lay.ensureValid(in.Table))
		case ir.IHeaderRemove:
			b.op = bHeaderRemove
			b.table = int32(lo.lay.ensureValid(in.Table))
		case ir.IPacketOp:
			switch in.Table {
			case "drop":
				b.op = bDrop
			case "forward":
				b.op = bForward
				b.a = lo.opref(in.Args[0], slot)
			case "mirror":
				b.op = bMirror
			case "copy_to_cpu":
				b.op = bToCPU
			default:
				continue // unknown packet op: the interpreter ignores it
			}
		case ir.IMember:
			b.op = bMember
			b.a = lo.opref(in.Args[0], slot)
			b.table = int32(lo.lay.ensureExtern(in.Table))
		case ir.ILookup:
			b.op = bLookup
			b.a = lo.opref(in.Args[0], slot)
			b.table = int32(lo.lay.ensureExtern(in.Table))
		case ir.IGlobalRead:
			g := lo.irp.Global(in.Table)
			if g == nil {
				return fmt.Errorf("dataplane: unknown global %q", in.Table)
			}
			b.op = bGlobalRead
			b.a = lo.opref(in.Args[0], slot)
			b.table = int32(lo.lay.ensureGlobal(g))
		case ir.IGlobalWrite:
			g := lo.irp.Global(in.Table)
			if g == nil {
				return fmt.Errorf("dataplane: unknown global %q", in.Table)
			}
			b.op = bGlobalWrite
			b.a = lo.opref(in.Args[0], slot)
			b.b = lo.opref(in.Args[1], slot)
			b.table = int32(lo.lay.ensureGlobal(g))
			b.auxMask = lo.lay.globals[b.table].mask
		case ir.IExternInsert:
			if len(in.Args) < 2 {
				continue // the interpreter ignores malformed inserts
			}
			b.op = bInsert
			b.a = lo.opref(in.Args[0], slot)
			b.b = lo.opref(in.Args[1], slot)
			b.table = int32(lo.lay.ensureExtern(in.Table))
		default:
			return fmt.Errorf("dataplane: cannot lower op %v", in.Op)
		}
		u.code = append(u.code, b)
	}
	return nil
}

// lowerReference flattens the whole program's one-big-pipeline semantics
// into a single unit. Each (pipeline, algorithm) occurrence gets its own
// register segment, mirroring the fresh environment RunReference gives
// every algorithm run; the segments share one register file that is zeroed
// once per packet.
func (lo *lowerer) lowerReference() (*compiledUnit, error) {
	u := &compiledUnit{}
	base := 0
	for _, pl := range lo.irp.Pipelines {
		for _, algName := range pl.Algorithms {
			a := lo.irp.Algorithm(algName)
			if a == nil {
				return nil, fmt.Errorf("dataplane: pipeline references unknown algorithm %q", algName)
			}
			m := ir.NewSlotMap()
			slot := func(v *ir.Var) int32 { return int32(base + m.Add(v)) }
			if err := lo.lowerInstrs(u, a.Instrs, slot, nil); err != nil {
				return nil, err
			}
			base += m.Len()
		}
	}
	u.numRegs = base
	return u, nil
}

// lowerSwitch flattens one switch's placed program: imports load bridge
// slots into registers, shard hit-gates are snapshotted from the imported
// registers, and exports copy registers back into the bridge.
func (lo *lowerer) lowerSwitch(sp *backend.SwitchProgram) (*compiledUnit, error) {
	u := &compiledUnit{name: sp.Switch}
	m := ir.NewSlotMap()
	slot := func(v *ir.Var) int32 { return int32(m.Add(v)) }

	for _, bv := range sp.Imports {
		u.imports = append(u.imports, bridgeMove{
			reg:  slot(bv.Var),
			slot: int32(lo.lay.ensureBridge(backend.BridgeFieldName(bv.Alg, bv.Var))),
		})
	}

	// Shard gating (Algorithm 2): one gate per hit-guarded table, its value
	// snapshotted at switch entry from the bridged hit variable.
	gated := make([]string, 0, len(sp.HitGuards))
	for name := range sp.HitGuards {
		gated = append(gated, name)
	}
	sort.Strings(gated)
	gateIdx := map[string]int32{}
	for i, name := range gated {
		gateIdx[name] = int32(i)
		u.gates = append(u.gates, slot(sp.HitGuards[name]))
	}
	instrGate := map[int]int32{}
	for _, pt := range sp.Tables {
		gi, ok := gateIdx[pt.Name]
		if !ok {
			continue
		}
		for _, ti := range pt.Table.Instrs() {
			instrGate[ti.ID] = gi
		}
	}
	gateOf := func(id int) int32 {
		if gi, ok := instrGate[id]; ok {
			return gi
		}
		return -1
	}

	if err := lo.lowerInstrs(u, sp.Instrs, slot, gateOf); err != nil {
		return nil, err
	}

	for _, bv := range sp.Exports {
		u.exports = append(u.exports, bridgeMove{
			reg:  slot(bv.Var),
			slot: int32(lo.lay.ensureBridge(backend.BridgeFieldName(bv.Alg, bv.Var))),
		})
	}
	u.numRegs = m.Len()
	return u, nil
}

// sameGuardsAndGate reports whether two instructions run under identical
// conditions: the same shard gate and the same guard conjunct list.
func sameGuardsAndGate(u *compiledUnit, a, b *binstr) bool {
	if a.gate != b.gate || a.guardEnd-a.guardOff != b.guardEnd-b.guardOff {
		return false
	}
	ga := u.guards[a.guardOff:a.guardEnd]
	gb := u.guards[b.guardOff:b.guardEnd]
	for i := range ga {
		if ga[i] != gb[i] {
			return false
		}
	}
	return true
}

// guardReadsReg reports whether an instruction's guard tests the register.
func guardReadsReg(u *compiledUnit, in *binstr, reg int32) bool {
	for _, g := range u.guards[in.guardOff:in.guardEnd] {
		if g.reg == reg {
			return true
		}
	}
	return false
}

// fuseUnit is the peephole superinstruction pass. It fuses adjacent pairs
// that run under identical guards and gates where the second instruction is
// keyed on the first's register result:
//
//	hash → lookup  becomes bHashLookup
//	hash → member  becomes bHashMember
//	bin  → select  becomes bBinSelect (compare→branch in this guard-based IR)
//
// The fused opcode performs both stores in original order (the intermediate
// register is still written), so fusion never changes observable state.
// Fusion requires the pair's shared guard not to test the intermediate
// register: the unfused loop re-evaluates the second guard after the first
// store, and a guard over the clobbered register could flip between the
// two evaluations.
//
// The pass also inlines single-conjunct guards (by far the common case of
// if-conversion) into the instruction itself — the guard→assign fusion —
// so the hot loop tests one register without touching the guard side array.
func fuseUnit(u *compiledUnit) {
	fused := u.code[:0:0]
	for i := 0; i < len(u.code); i++ {
		in := u.code[i]
		if i+1 < len(u.code) && in.destKind == dReg {
			nx := &u.code[i+1]
			if sameGuardsAndGate(u, &in, nx) && !guardReadsReg(u, nx, in.dest) {
				switch {
				case in.op == bHash && (nx.op == bLookup || nx.op == bMember) &&
					nx.a.kind == oReg && nx.a.idx == in.dest:
					if nx.op == bLookup {
						in.op = bHashLookup
					} else {
						in.op = bHashMember
					}
					in.table = nx.table
					in.dest2, in.dest2Kind, in.dest2Mask = nx.dest, nx.destKind, nx.destMask
					fused = append(fused, in)
					i++
					continue
				case in.op == bBin && nx.op == bSelect &&
					nx.a.kind == oReg && nx.a.idx == in.dest:
					// The select's true/false operands ride in the unit's
					// flat args array (the bBin slot pair a/b stays the
					// comparison's operands).
					in.op = bBinSelect
					in.argsOff = int32(len(u.args))
					u.args = append(u.args, nx.b, nx.c)
					in.argsEnd = int32(len(u.args))
					in.dest2, in.dest2Kind, in.dest2Mask = nx.dest, nx.destKind, nx.destMask
					fused = append(fused, in)
					i++
					continue
				}
			}
		}
		fused = append(fused, in)
	}
	u.code = fused
	for i := range u.code {
		in := &u.code[i]
		if in.guardEnd-in.guardOff == 1 {
			g := u.guards[in.guardOff]
			in.g1reg, in.g1neg = g.reg, g.neg
		}
	}
}
