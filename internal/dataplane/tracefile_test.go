package dataplane

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

// TestTraceRoundTrip: Write → Parse reproduces records exactly, and the
// written form is stable (sorted fields) so checked-in traces diff cleanly.
func TestTraceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	recs := streamTrace(rng, 9, 40)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip: %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].TS != recs[i].TS {
			t.Fatalf("record %d: ts %d != %d", i, got[i].TS, recs[i].TS)
		}
		if len(got[i].Fields) != len(recs[i].Fields) {
			t.Fatalf("record %d: field count mismatch", i)
		}
		for k, v := range recs[i].Fields {
			if got[i].Fields[k] != v {
				t.Fatalf("record %d: %s = %d, want %d", i, k, got[i].Fields[k], v)
			}
		}
		if strings.Join(got[i].Valid, ",") != strings.Join(recs[i].Valid, ",") {
			t.Fatalf("record %d: valid mismatch", i)
		}
	}
	var buf2 bytes.Buffer
	if err := WriteTrace(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if buf2.String() == "" || buf2.String() != rewrite(t, recs) {
		t.Fatal("second write is not byte-stable")
	}
}

func rewrite(t *testing.T, recs []TraceRecord) string {
	t.Helper()
	var b bytes.Buffer
	if err := WriteTrace(&b, recs); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestTraceTimestampField: capture time lands in the designated field,
// hex values and comments parse, malformed input fails loudly.
func TestTraceTimestampField(t *testing.T) {
	in := `# capture of two flows
packet ts=0x64 valid=flow flow.id=3 flow.a=7

packet ts=210 valid=flow flow.id=4
`
	recs, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].TS != 100 || recs[1].TS != 210 {
		t.Fatalf("parsed %+v", recs)
	}
	p := recs[0].Packet("flow.ts")
	if p.Fields["flow.ts"] != 100 || p.Fields["flow.id"] != 3 || !p.Valid["flow"] {
		t.Fatalf("materialized %+v", p)
	}
	for _, bad := range []string{
		"pkt ts=1\n",              // unknown directive
		"packet notafield=1\n",    // field without hdr. prefix
		"packet flow.id\n",        // missing =
		"packet ts=zz\n",          // bad number
		"packet flow.id=0x10g0\n", // bad hex
	} {
		if _, err := ParseTrace(strings.NewReader(bad)); err == nil {
			t.Fatalf("parse accepted %q", bad)
		}
	}
}

// TestTraceFileReplay replays the checked-in sample capture through a
// stream and cross-checks it against one-shot execution — the end-to-end
// path the examples and lyra-bench use.
func TestTraceFileReplay(t *testing.T) {
	recs, err := LoadTraceFile(filepath.Join("..", "..", "testdata", "traces", "flows_sample.lyt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 16 {
		t.Fatalf("sample trace has %d records, want >= 16", len(recs))
	}
	plan, _ := compile(t, streamSrc, streamScope)
	path := plan.Input.Scopes["track"].Paths[0]

	refDep, err := NewDeployment(plan, NewTables())
	if err != nil {
		t.Fatal(err)
	}
	refEng, err := refDep.Engine()
	if err != nil {
		t.Fatal(err)
	}
	ref := refEng.FlattenTrace(recs, "")
	refEng.RunBatch(path, nil, ref, 1)

	dep, err := NewDeployment(plan, NewTables())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := dep.Engine()
	if err != nil {
		t.Fatal(err)
	}
	key, err := eng.FlowKeyField("flow.id")
	if err != nil {
		t.Fatal(err)
	}
	s, err := dep.OpenStream(path, StreamOptions{Lanes: 3, BatchSize: 4, FlowKey: key})
	if err != nil {
		t.Fatal(err)
	}
	got := eng.FlattenTrace(recs, "")
	if err := s.Feed(got...); err != nil {
		t.Fatal(err)
	}
	s.Close()
	for i := range got {
		if diff := DiffPackets(ref[i].Packet(), got[i].Packet(), nil); len(diff) > 0 {
			t.Fatalf("packet %d diverges: %v", i, diff)
		}
	}
}
