package dataplane

import (
	"bytes"
	"math/rand"
	"testing"
)

// wireEngine compiles wireSrc and returns its deployment engine plus IR,
// the fixtures the flat-vs-map wire comparisons run against.
func wireEngine(t testing.TB) (*Engine, *Deployment) {
	t.Helper()
	plan, _ := compile(t, wireSrc, "noop: [ ToR3 | PER-SW | - ]")
	dep, err := NewDeployment(plan, NewTables())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := dep.Engine()
	if err != nil {
		t.Fatal(err)
	}
	return eng, dep
}

// checkWireFlatAgreement is the byte-level oracle: the flat codec and the
// map-based wire path must agree on arbitrary input bytes — same parse
// error (if any), same parsed packet, same unconsumed payload, and the
// same re-serialized bytes.
func checkWireFlatAgreement(t *testing.T, eng *Engine, data []byte) {
	t.Helper()
	irp := eng.dep.Plan.Input.IR
	mapPkt, mapPayload, mapErr := ParseBytes(irp, data)
	flatPkt, flatPayload, flatErr := eng.ParseBytesFlat(data)
	if (mapErr == nil) != (flatErr == nil) {
		t.Fatalf("parse error divergence on %x:\n  map:  %v\n  flat: %v", data, mapErr, flatErr)
	}
	if mapErr != nil {
		if mapErr.Error() != flatErr.Error() {
			t.Fatalf("parse error text divergence on %x:\n  map:  %v\n  flat: %v", data, mapErr, flatErr)
		}
		return
	}
	if !bytes.Equal(mapPayload, flatPayload) {
		t.Fatalf("payload divergence on %x: map %x, flat %x", data, mapPayload, flatPayload)
	}
	got := flatPkt.Packet()
	if got.Summary() != mapPkt.Summary() {
		t.Fatalf("parsed packet divergence on %x:\n  map:  %s\n  flat: %s", data, mapPkt.Summary(), got.Summary())
	}
	if diffs := DiffPackets(mapPkt, got, nil); len(diffs) > 0 {
		t.Fatalf("parsed field divergence on %x: %v", data, diffs)
	}
	mapOut, mapSerErr := Serialize(irp, mapPkt, mapPayload)
	flatOut, flatSerErr := eng.SerializeFlat(flatPkt, flatPayload)
	if (mapSerErr == nil) != (flatSerErr == nil) {
		t.Fatalf("serialize error divergence on %x:\n  map:  %v\n  flat: %v", data, mapSerErr, flatSerErr)
	}
	if mapSerErr != nil {
		return
	}
	if !bytes.Equal(mapOut, flatOut) {
		t.Fatalf("serialized byte divergence on %x:\n  map:  %x\n  flat: %x", data, mapOut, flatOut)
	}
}

// FuzzWireFlatRoundTrip feeds arbitrary bytes to both wire paths and
// requires byte-level agreement end to end. Run with:
//
//	go test ./internal/dataplane -fuzz FuzzWireFlatRoundTrip
func FuzzWireFlatRoundTrip(f *testing.F) {
	plan, irp := compile(f, wireSrc, "noop: [ ToR3 | PER-SW | - ]")
	dep, err := NewDeployment(plan, NewTables())
	if err != nil {
		f.Fatal(err)
	}
	eng, err := dep.Engine()
	if err != nil {
		f.Fatal(err)
	}
	// Seed with structurally interesting inputs: a full ethernet+ipv4
	// packet, an ethernet+probe+ipv4 chain, truncations, and junk.
	pkt := NewPacket()
	pkt.Valid["ethernet"] = true
	pkt.Fields["ethernet.dst_mac"] = 0x112233445566
	pkt.Fields["ethernet.src_mac"] = 0xAABBCCDDEEFF
	pkt.Fields["ethernet.ether_type"] = 0x0800
	pkt.Valid["ipv4"] = true
	pkt.Fields["ipv4.ttl"] = 64
	pkt.Fields["ipv4.protocol"] = 6
	pkt.Fields["ipv4.src_ip"] = 0x0A000001
	pkt.Fields["ipv4.dst_ip"] = 0x0A000002
	full, err := Serialize(irp, pkt, []byte{0xde, 0xad})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(full)
	pkt.Fields["ethernet.ether_type"] = 0x0801
	pkt.Valid["probe"] = true
	pkt.Fields["probe.msg_type"] = 1
	pkt.Fields["probe.hop_count"] = 3
	chained, err := Serialize(irp, pkt, nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(chained)
	f.Add(full[:7])     // truncated mid-ethernet
	f.Add([]byte{})     // empty wire
	f.Add([]byte{0xff}) // one junk byte
	f.Fuzz(func(t *testing.T, data []byte) {
		checkWireFlatAgreement(t, eng, data)
	})
}

// TestWireFlatSweep is the deterministic arm of the fuzz campaign: 200
// random wire packets (valid serializations, truncations, and raw noise)
// checked for byte-level agreement between the two paths.
func TestWireFlatSweep(t *testing.T) {
	eng, _ := wireEngine(t)
	irp := eng.dep.Plan.Input.IR
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		var data []byte
		switch i % 4 {
		case 0, 1: // valid serialization of a random packet
			pkt := NewPacket()
			pkt.Valid["ethernet"] = true
			pkt.Fields["ethernet.dst_mac"] = uint64(rng.Int63()) & (1<<48 - 1)
			pkt.Fields["ethernet.src_mac"] = uint64(rng.Int63()) & (1<<48 - 1)
			switch rng.Intn(3) {
			case 0:
				pkt.Fields["ethernet.ether_type"] = 0x0800
				pkt.Valid["ipv4"] = true
				pkt.Fields["ipv4.ttl"] = uint64(rng.Intn(256))
				pkt.Fields["ipv4.protocol"] = 6
				pkt.Fields["ipv4.src_ip"] = uint64(rng.Uint32())
				pkt.Fields["ipv4.dst_ip"] = uint64(rng.Uint32())
			case 1:
				pkt.Fields["ethernet.ether_type"] = 0x0801
				pkt.Valid["probe"] = true
				pkt.Fields["probe.msg_type"] = uint64(rng.Intn(3))
				pkt.Fields["probe.hop_count"] = uint64(rng.Intn(256))
			default:
				pkt.Fields["ethernet.ether_type"] = uint64(rng.Intn(1 << 16))
			}
			payload := make([]byte, rng.Intn(16))
			rng.Read(payload)
			var err error
			data, err = Serialize(irp, pkt, payload)
			if err != nil {
				t.Fatal(err)
			}
		case 2: // truncated valid packet
			base := make([]byte, 14+rng.Intn(12))
			rng.Read(base)
			data = base[:rng.Intn(len(base)+1)]
		default: // raw noise
			data = make([]byte, rng.Intn(40))
			rng.Read(data)
		}
		checkWireFlatAgreement(t, eng, data)
	}
}

// TestWireFlatGraphless covers programs without parser_nodes, where both
// paths extract declared headers in order while bytes remain.
func TestWireFlatGraphless(t *testing.T) {
	src := `
header_type a_t { bit[16] x; bit[16] y; }
header a_t a;
header_type b_t { bit[8] z; }
header b_t b;
pipeline[P]{noop};
algorithm noop { q = a.x; }
`
	plan, _ := compile(t, src, "noop: [ ToR3 | PER-SW | - ]")
	dep, err := NewDeployment(plan, NewTables())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := dep.Engine()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 50; i++ {
		data := make([]byte, rng.Intn(10))
		rng.Read(data)
		checkWireFlatAgreement(t, eng, data)
	}
}

// TestWireFlatDirectSlots asserts the parse really is bytes-native: the
// extracted fields land in the layout's slots (not the overflow maps).
func TestWireFlatDirectSlots(t *testing.T) {
	eng, _ := wireEngine(t)
	irp := eng.dep.Plan.Input.IR
	pkt := NewPacket()
	pkt.Valid["ethernet"] = true
	pkt.Fields["ethernet.dst_mac"] = 42
	pkt.Fields["ethernet.src_mac"] = 43
	pkt.Fields["ethernet.ether_type"] = 0x0800
	pkt.Valid["ipv4"] = true
	pkt.Fields["ipv4.ttl"] = 64
	pkt.Fields["ipv4.protocol"] = 17
	pkt.Fields["ipv4.src_ip"] = 7
	pkt.Fields["ipv4.dst_ip"] = 9
	data, err := Serialize(irp, pkt, nil)
	if err != nil {
		t.Fatal(err)
	}
	f, _, err := eng.ParseBytesFlat(data)
	if err != nil {
		t.Fatal(err)
	}
	if f.extraFields != nil || f.extraValid != nil {
		t.Fatalf("declared headers overflowed the layout: fields=%v valid=%v", f.extraFields, f.extraValid)
	}
	if s, ok := eng.layout.fieldSlot["ipv4.src_ip"]; !ok || f.Fields[s] != 7 || !f.fieldSet[s] {
		t.Fatalf("ipv4.src_ip not deposited in its slot")
	}
	if s, ok := eng.layout.validSlot["ipv4"]; !ok || !f.Valid[s] {
		t.Fatalf("ipv4 validity not deposited in its slot")
	}
}
