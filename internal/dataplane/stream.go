package dataplane

// Long-lived streaming replay over the execution tiers. A Stream is a
// stateful packet conveyor opened on one flow path: packets are fed
// continuously, each is pinned to a lane by its flow key, and per-flow
// register/extern state survives across batch boundaries because a flow's
// packets always execute on the same lane, in arrival order.
//
// Lane-affinity contract. Streaming with N lanes is byte-identical to a
// single-lane one-shot replay of the same trace if and only if every
// cross-packet state interaction in the program is confined to packets
// with equal flow key:
//
//   - extern dict state keyed by a value k the program computes from
//     packet fields is sound when FlowKey returns that same k — two
//     packets that can touch the same entry carry equal keys and land on
//     the same lane;
//   - global register arrays indexed by an expression idx(pkt) are sound
//     when FlowKey returns idx(pkt) (or any value that determines it) —
//     index collisions then imply lane collisions;
//   - cross-flow state (a count-min sketch row indexed by one hash while
//     lanes are keyed by another) is NOT lane-safe: run it at Lanes=1, or
//     merge per-lane arrays afterwards when every write is a commutative
//     increment (MergedGlobal).
//
// Backpressure. Feed accumulates packets into preallocated per-lane
// buffers of BatchSize; when a packet arrives for a full lane, Feed drains
// every pending lane in parallel (one worker per lane) before accepting
// it. Feed therefore never buffers more than Lanes×BatchSize packets and
// never returns while the stream is over capacity — the caller's Feed
// call IS the backpressure. The drain path reuses the engine/compiled
// zero-allocation execution loops, so the steady state allocates nothing
// per packet.
//
// Like the executors it builds on, a Stream is single-caller: one
// goroutine calls Feed/Flush/Close; the stream fans out internally.

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// StreamOptions configures OpenStream.
type StreamOptions struct {
	// Tier selects the execution backend (default TierEngine). The
	// interpreter tier keeps its state in the deployment and is not
	// thread-safe, so its lanes drain sequentially; it exists so the
	// oracle can replay the same stream shape on the reference semantics.
	Tier ExecutorTier
	// Lanes is the number of affinity lanes (and drain workers).
	// Default 1.
	Lanes int
	// BatchSize is the per-lane accumulation depth before a forced drain.
	// Default 256.
	BatchSize int
	// FlowKey extracts the flow key a packet's shared state is keyed by.
	// Packets whose state interactions are not confined to equal keys
	// violate the lane-affinity contract above. Default: all packets map
	// to key 0 (single-flow semantics).
	FlowKey func(*FlatPacket) uint64
	// Ctx is the switch environment for every hop (nil = zero context).
	// Traces that need per-packet time carry it in a packet field, like
	// the capture they were cut from.
	Ctx *Context
}

// StreamStats counts work done through one stream.
type StreamStats struct {
	Tier        string   `json:"tier"`
	Lanes       int      `json:"lanes"`
	BatchSize   int      `json:"batch_size"`
	Packets     uint64   `json:"packets"`
	Drains      uint64   `json:"drains"`       // coordinated drain rounds
	LaneBatches uint64   `json:"lane_batches"` // non-empty lane drains
	LanePackets []uint64 `json:"lane_packets"` // per-lane totals
}

// Stream is a long-lived replay session over one deployment path. It owns
// its lanes — they are not shared with the deployment's RunBatch lane
// pool — so concurrent one-shot replays on the same deployment cannot
// contaminate streaming state.
type Stream struct {
	d     *Deployment
	tier  ExecutorTier
	eng   *Engine
	comp  *Compiled
	units []*ccode // compiled tier: path units resolved once at open
	path  []string
	ctx   *Context

	lanes   []*Lane
	pend    [][]*FlatPacket
	flowKey func(*FlatPacket) uint64
	batch   int
	drainFn func(int) // preallocated drain body

	// Persistent lane workers (multi-lane flat tiers only): spawning
	// goroutines per drain round would allocate in the steady state, so a
	// stream keeps one parked worker per lane for its whole life.
	work   chan int
	wg     sync.WaitGroup
	wpanic atomic.Pointer[workerPanic]

	packets     uint64
	drains      uint64
	laneBatches uint64
	lanePackets []uint64
	closed      bool
}

// OpenStream opens a streaming replay session along path. The path slice
// is retained; the caller must not mutate it while the stream is open.
func (d *Deployment) OpenStream(path []string, opts StreamOptions) (*Stream, error) {
	if len(path) == 0 {
		return nil, fmt.Errorf("dataplane: OpenStream needs a non-empty path")
	}
	if opts.Lanes <= 0 {
		opts.Lanes = 1
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 256
	}
	s := &Stream{
		d:           d,
		tier:        opts.Tier,
		path:        path,
		ctx:         opts.Ctx,
		flowKey:     opts.FlowKey,
		batch:       opts.BatchSize,
		pend:        make([][]*FlatPacket, opts.Lanes),
		lanePackets: make([]uint64, opts.Lanes),
	}
	if s.ctx == nil {
		s.ctx = &zeroCtx
	}
	eng, err := d.Engine()
	if err != nil {
		return nil, err
	}
	s.eng = eng
	switch opts.Tier {
	case TierInterpreter:
		// State lives in the deployment; lanes are accumulation buffers
		// only and drain sequentially on the caller's goroutine.
	case TierEngine:
		s.lanes = make([]*Lane, opts.Lanes)
		for i := range s.lanes {
			s.lanes[i] = eng.NewLane()
		}
	case TierCompiled:
		c, err := d.Compiled()
		if err != nil {
			return nil, err
		}
		s.comp = c
		s.units = c.resolveUnits(path)
		s.lanes = make([]*Lane, opts.Lanes)
		for i := range s.lanes {
			s.lanes[i] = eng.NewLane()
		}
	default:
		return nil, fmt.Errorf("dataplane: unknown executor tier %v", opts.Tier)
	}
	for i := range s.pend {
		s.pend[i] = make([]*FlatPacket, 0, opts.BatchSize)
	}
	s.drainFn = s.drainLane
	if opts.Tier != TierInterpreter && opts.Lanes > 1 {
		s.startWorkers()
	}
	return s, nil
}

// workerPanic carries a lane worker's panic value back to the caller's
// goroutine, preserving the panics-cross-the-API-once contract of the
// one-shot executors.
type workerPanic struct{ value any }

// startWorkers parks one persistent drain worker per lane. Workers live
// until Close; dispatch is a channel send and a WaitGroup count, neither
// of which allocates, so multi-lane steady-state drains stay alloc-free.
func (s *Stream) startWorkers() {
	// Workers range over a captured local, not the s.work field: Close
	// nils the field on the caller's goroutine after closing the channel,
	// and a field read from a parked worker would race with that write.
	ch := make(chan int, len(s.pend))
	s.work = ch
	for i := 0; i < len(s.pend); i++ {
		go func() {
			for w := range ch {
				s.runWorker(w)
			}
		}()
	}
}

func (s *Stream) runWorker(w int) {
	defer s.wg.Done()
	defer func() {
		if v := recover(); v != nil {
			s.wpanic.CompareAndSwap(nil, &workerPanic{value: v})
		}
	}()
	s.drainFn(w)
}

// LaneOf maps a flow key to its lane: an FNV-1a mix of the key modulo the
// lane count, so adjacent keys spread instead of striping.
func (s *Stream) LaneOf(key uint64) int {
	return int(fnvMix(key) % uint64(len(s.pend)))
}

func fnvMix(v uint64) uint64 {
	var h uint64 = 14695981039346656037
	for sh := uint(0); sh < 64; sh += 8 {
		h ^= (v >> sh) & 0xff
		h *= 1099511628211
	}
	return h
}

// Feed accepts packets in stream order. Each packet is appended to its
// flow's lane; a packet arriving for a full lane first drains all pending
// lanes in parallel. Packets are mutated in place when their lane drains
// (at the latest by Flush/Close); the caller must not touch a fed packet
// until then.
func (s *Stream) Feed(pkts ...*FlatPacket) error {
	if s.closed {
		return fmt.Errorf("dataplane: Feed on closed stream")
	}
	if len(pkts) > 0 {
		if err := s.eng.owns(pkts[0]); err != nil {
			return err
		}
	}
	for _, f := range pkts {
		lane := 0
		if s.flowKey != nil && len(s.pend) > 1 {
			lane = s.LaneOf(s.flowKey(f))
		} else if s.flowKey != nil {
			_ = s.flowKey(f) // keep key cost visible at Lanes=1 too
		}
		if len(s.pend[lane]) == s.batch {
			s.drain()
		}
		s.pend[lane] = append(s.pend[lane], f)
		s.packets++
		s.lanePackets[lane]++
	}
	return nil
}

// drainLane executes one lane's pending packets in FIFO order and resets
// the buffer. Safe to run concurrently across distinct lanes on the
// engine/compiled tiers.
func (s *Stream) drainLane(w int) {
	pkts := s.pend[w]
	if len(pkts) == 0 {
		return
	}
	switch s.tier {
	case TierEngine:
		l := s.lanes[w]
		for _, f := range pkts {
			s.eng.RunPacket(l, s.path, s.ctx, f)
		}
	case TierCompiled:
		l := s.lanes[w]
		for _, f := range pkts {
			s.comp.runResolved(l, s.units, s.ctx, f)
		}
	default: // TierInterpreter: deployment state, sequential by contract
		for _, f := range pkts {
			out, err := s.d.RunPath(s.path, s.ctx, f.Packet())
			if err == nil {
				f.load(out)
			}
		}
	}
	s.pend[w] = pkts[:0]
}

// drain runs every pending lane — in parallel on the flat tiers, one
// worker per lane — and counts the round.
func (s *Stream) drain() {
	active := 0
	for _, p := range s.pend {
		if len(p) > 0 {
			active++
		}
	}
	if active == 0 {
		return
	}
	s.drains++
	s.laneBatches += uint64(active)
	if s.work != nil {
		s.wg.Add(len(s.pend))
		for w := range s.pend {
			s.work <- w
		}
		s.wg.Wait()
		if p := s.wpanic.Swap(nil); p != nil {
			panic(p.value)
		}
		return
	}
	// Single lane, or the interpreter tier (deployment state, sequential
	// by contract): drain on the caller's goroutine.
	for w := range s.pend {
		s.drainFn(w)
	}
}

// Flush drains every pending lane. The stream remains open.
func (s *Stream) Flush() {
	if !s.closed {
		s.drain()
	}
}

// Close flushes and seals the stream. Lane state stays readable through
// TableEntry/GlobalAt/MergedGlobal after Close.
func (s *Stream) Close() {
	if s.closed {
		return
	}
	s.drain()
	s.closed = true
	if s.work != nil {
		close(s.work)
		s.work = nil
	}
}

// Stats reports stream-lifetime counters. The LanePackets slice is live.
func (s *Stream) Stats() StreamStats {
	return StreamStats{
		Tier:        s.tier.String(),
		Lanes:       len(s.pend),
		BatchSize:   s.batch,
		Packets:     s.packets,
		Drains:      s.drains,
		LaneBatches: s.laneBatches,
		LanePackets: s.lanePackets,
	}
}

// TableEntry reads one extern-table entry as switch sw's program on the
// given lane sees it: lane-local data-plane inserts included. On the
// interpreter tier (lane ignored) it reads the deployment's shard table.
func (s *Stream) TableEntry(lane int, sw, extern string, key uint64) (uint64, bool, error) {
	if s.tier == TierInterpreter {
		src := s.d.shardTables[sw]
		if src == nil {
			return 0, false, fmt.Errorf("dataplane: switch %q has no shard tables", sw)
		}
		es := src.Externs[extern]
		if es == nil {
			return 0, false, nil
		}
		v, ok := es.Entries[key]
		return v, ok, nil
	}
	u := s.eng.switchUnits[sw]
	if u == nil {
		return 0, false, fmt.Errorf("dataplane: switch %q has no program", sw)
	}
	ei, ok := s.eng.layout.externSlot[extern]
	if !ok {
		return 0, false, fmt.Errorf("dataplane: unknown extern %q", extern)
	}
	if lane < 0 || lane >= len(s.lanes) {
		return 0, false, fmt.Errorf("dataplane: lane %d out of range [0,%d)", lane, len(s.lanes))
	}
	v, ok := s.lanes[lane].tables[u.stateIdx][ei].entries[key]
	return v, ok, nil
}

// GlobalAt reads one cell of a global register array as switch sw's
// program on the given lane sees it. On the interpreter tier (lane
// ignored) it reads the deployment's per-switch store.
func (s *Stream) GlobalAt(lane int, sw, global string, idx uint64) (uint64, error) {
	gi, ok := s.eng.layout.globalSlot[global]
	if !ok {
		return 0, fmt.Errorf("dataplane: unknown global %q", global)
	}
	spec := s.eng.layout.globals[gi]
	if s.tier == TierInterpreter {
		gs := s.d.globals[sw]
		if gs == nil {
			return 0, fmt.Errorf("dataplane: switch %q has no globals", sw)
		}
		return gs.read(global, spec.length, idx), nil
	}
	u := s.eng.switchUnits[sw]
	if u == nil {
		return 0, fmt.Errorf("dataplane: switch %q has no program", sw)
	}
	if lane < 0 || lane >= len(s.lanes) {
		return 0, fmt.Errorf("dataplane: lane %d out of range [0,%d)", lane, len(s.lanes))
	}
	arr := s.lanes[lane].globals[u.stateIdx][gi]
	if idx >= uint64(len(arr)) {
		return 0, nil
	}
	return arr[idx], nil
}

// MergedGlobal sums a global register array across all lanes for one
// switch — the export path for commutative-increment state like sketch
// rows, where the per-lane partial counts add up to the single-lane
// totals regardless of how flows were spread.
func (s *Stream) MergedGlobal(sw, global string) ([]uint64, error) {
	gi, ok := s.eng.layout.globalSlot[global]
	if !ok {
		return nil, fmt.Errorf("dataplane: unknown global %q", global)
	}
	spec := s.eng.layout.globals[gi]
	out := make([]uint64, spec.length)
	if s.tier == TierInterpreter {
		gs := s.d.globals[sw]
		if gs == nil {
			return nil, fmt.Errorf("dataplane: switch %q has no globals", sw)
		}
		for i := range out {
			out[i] = gs.read(global, spec.length, uint64(i)) & spec.mask
		}
		return out, nil
	}
	u := s.eng.switchUnits[sw]
	if u == nil {
		return nil, fmt.Errorf("dataplane: switch %q has no program", sw)
	}
	for _, l := range s.lanes {
		for i, v := range l.globals[u.stateIdx][gi] {
			out[i] = (out[i] + v) & spec.mask
		}
	}
	return out, nil
}

// FlowKeyField builds a FlowKey that returns one field's raw value — the
// right key when state is keyed/indexed directly by that field.
func (e *Engine) FlowKeyField(name string) (func(*FlatPacket) uint64, error) {
	slot, ok := e.layout.fieldSlot[name]
	if !ok {
		return nil, fmt.Errorf("dataplane: unknown field %q", name)
	}
	return func(f *FlatPacket) uint64 { return f.Fields[slot] }, nil
}

// FlowKeyHash builds a FlowKey computing the same hash the data plane's
// hash units compute — kind is "crc32_hash" or "crc16_hash", bits the
// width of the variable the program stores it into, andMask an optional
// extra mask (0 = none) matching a `h & (N-1)` index derivation. A
// program keying its state by that hash then gets a lane assignment that
// is a function of the state key, satisfying the affinity contract.
func (e *Engine) FlowKeyHash(kind string, bits int, andMask uint64, fields ...string) (func(*FlatPacket) uint64, error) {
	slots := make([]int, len(fields))
	for i, name := range fields {
		s, ok := e.layout.fieldSlot[name]
		if !ok {
			return nil, fmt.Errorf("dataplane: unknown field %q", name)
		}
		slots[i] = s
	}
	crc16 := kind == "crc16_hash"
	storeMask := maskBits(bits)
	if andMask == 0 {
		andMask = ^uint64(0)
	}
	return func(f *FlatPacket) uint64 {
		var h uint64 = 14695981039346656037
		for _, s := range slots {
			v := f.Fields[s]
			for sh := uint(0); sh < 64; sh += 8 {
				h ^= (v >> sh) & 0xff
				h *= 1099511628211
			}
		}
		if crc16 {
			h = (h >> 16) ^ (h & 0xffff)
		}
		return h & storeMask & andMask
	}, nil
}
