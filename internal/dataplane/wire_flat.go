package dataplane

// The bytes-native wire path. A WireCodec precompiles a program's header
// layouts and parse graph against an engine Layout once, so raw bytes
// parse directly into FlatPacket slots and serialize back out without the
// map-based Packet detour of wire.go. The codec mirrors ParseBytes /
// Serialize bit-for-bit (same MSB-first packing, same parse-graph walk,
// same stop-on-invalid emit semantics, same error messages); wire_flat
// fuzz tests hold the two paths to byte-level agreement.

import (
	"fmt"

	"lyra/internal/ir"
)

// wireField is one header field resolved against the layout: its slot (or
// -1 for fields the layout never saw, which overflow-map like the
// interpreter), its full "hdr.field" key, and its wire width.
type wireField struct {
	slot int
	name string
	bits int
}

// wireHeader is one header instance's precompiled wire image.
type wireHeader struct {
	name       string
	validSlot  int // -1 when the layout has no validity slot for it
	fields     []wireField
	totalBits  int
	haveLayout bool // headerLayout resolved; false reproduces wire.go's error lazily
}

// Next-state markers beyond real state indices.
const (
	wireStateEnd       = -1 // "", accept, ingress — parsing stops cleanly
	wireStateUndefined = -2 // named state has no parser node
)

// wireCase is one precompiled select case.
type wireCase struct {
	value    uint64
	next     int
	nextName string
}

// wireState is one precompiled parser state.
type wireState struct {
	name        string
	extracts    []int // indices into WireCodec.headers
	hasSelect   bool
	keyErr      error // selectKey failure, surfaced when the state is reached
	keySlot     int
	keyName     string
	cases       []wireCase
	defaultNext int
	defaultName string
}

// WireCodec is the precompiled bytes<->FlatPacket translator for one
// engine layout. It is immutable after construction and safe to share
// across lanes; ParseBytesFlat allocates only the returned packet.
type WireCodec struct {
	lay       *Layout
	headers   []wireHeader
	headerIdx map[string]int
	states    []wireState
	start     int   // index into states; wireStateEnd when graph-less
	order     []int // wireOrder as header indices
}

// NewWireCodec precompiles the program's wire format against a layout.
func NewWireCodec(irp *ir.Program, lay *Layout) *WireCodec {
	c := &WireCodec{lay: lay, headerIdx: map[string]int{}, start: wireStateEnd}
	for _, h := range wireOrder(irp) {
		c.order = append(c.order, c.ensureHeader(irp, h))
	}
	src := irp.Source
	if len(src.Parsers) == 0 {
		return c
	}
	// First parser node wins on duplicate names, as in wire.go's scans.
	idx := map[string]int{}
	for _, pn := range src.Parsers {
		if _, ok := idx[pn.Name]; ok {
			continue
		}
		idx[pn.Name] = len(c.states)
		c.states = append(c.states, wireState{name: pn.Name})
	}
	resolve := func(name string) (int, string) {
		if name == "" || name == "accept" || name == "ingress" {
			return wireStateEnd, name
		}
		if si, ok := idx[name]; ok {
			return si, name
		}
		return wireStateUndefined, name
	}
	compiled := make([]bool, len(c.states))
	for _, pn := range src.Parsers {
		si := idx[pn.Name]
		if compiled[si] {
			continue // later duplicate; the first node wins, as in wire.go
		}
		compiled[si] = true
		st := &c.states[si]
		for _, h := range pn.Extracts {
			st.extracts = append(st.extracts, c.ensureHeader(irp, h))
		}
		if pn.Select != nil {
			st.hasSelect = true
			keyStr, err := selectKey(pn.Select.Key)
			if err != nil {
				st.keyErr = err
			} else {
				st.keyName = keyStr
				st.keySlot = -1
				if s, ok := lay.fieldSlot[keyStr]; ok {
					st.keySlot = s
				}
			}
			for _, cs := range pn.Select.Cases {
				next, name := resolve(cs.Next)
				st.cases = append(st.cases, wireCase{value: cs.Value, next: next, nextName: name})
			}
			st.defaultNext, st.defaultName = resolve(pn.Select.Default)
		}
	}
	start := "start"
	if _, ok := idx["start"]; !ok {
		start = src.Parsers[0].Name
	}
	c.start = idx[start]
	return c
}

// ensureHeader interns a header instance's precompiled layout.
func (c *WireCodec) ensureHeader(irp *ir.Program, name string) int {
	if hi, ok := c.headerIdx[name]; ok {
		return hi
	}
	wh := wireHeader{name: name, validSlot: -1}
	if s, ok := c.lay.validSlot[name]; ok {
		wh.validSlot = s
	}
	if layout, ok := headerLayout(irp, name); ok {
		wh.haveLayout = true
		for _, f := range layout {
			fname, bits := f[0].(string), f[1].(int)
			key := name + "." + fname
			slot := -1
			if s, ok := c.lay.fieldSlot[key]; ok {
				slot = s
			}
			wh.fields = append(wh.fields, wireField{slot: slot, name: key, bits: bits})
			wh.totalBits += bits
		}
	}
	hi := len(c.headers)
	c.headerIdx[name] = hi
	c.headers = append(c.headers, wh)
	return hi
}

// fieldVal reads a precompiled field reference off a flat packet,
// matching the map semantics (absent => 0).
func (c *WireCodec) fieldVal(f *FlatPacket, slot int, name string) uint64 {
	if slot >= 0 {
		return f.Fields[slot]
	}
	return f.extraFields[name]
}

// headerValid reports whether a header is present on the packet.
func (c *WireCodec) headerValid(f *FlatPacket, h *wireHeader) bool {
	if h.validSlot >= 0 {
		return f.Valid[h.validSlot]
	}
	return f.extraValid[h.name]
}

// extract reads one header's fields off the bit stream into the packet's
// slots and marks it valid.
func (c *WireCodec) extract(f *FlatPacket, r *bitReader, h *wireHeader) error {
	if !h.haveLayout {
		return fmt.Errorf("dataplane: no layout for header %q", h.name)
	}
	for i := range h.fields {
		fl := &h.fields[i]
		v, err := r.read(fl.bits)
		if err != nil {
			return err
		}
		if fl.slot >= 0 {
			f.Fields[fl.slot] = v
			f.fieldSet[fl.slot] = true
		} else {
			f.SetField(fl.name, v)
		}
	}
	if h.validSlot >= 0 {
		f.Valid[h.validSlot] = true
		f.validSet[h.validSlot] = true
	} else {
		f.SetValid(h.name)
	}
	return nil
}

// ParseBytesFlat runs the precompiled parse graph over raw bytes,
// depositing fields directly into a fresh FlatPacket's slots, and returns
// the unconsumed payload. Behavior is bit-identical to ParseBytes
// followed by Flatten.
func (c *WireCodec) ParseBytesFlat(data []byte) (*FlatPacket, []byte, error) {
	f := c.lay.newFlat()
	r := bitReader{buf: data}
	if len(c.states) == 0 {
		for _, hi := range c.order {
			h := &c.headers[hi]
			if h.haveLayout && r.remaining() < h.totalBits {
				break
			}
			if err := c.extract(f, &r, h); err != nil {
				return nil, nil, err
			}
		}
	} else {
		si := c.start
		for si >= 0 {
			st := &c.states[si]
			for _, hi := range st.extracts {
				if err := c.extract(f, &r, &c.headers[hi]); err != nil {
					return nil, nil, err
				}
			}
			if !st.hasSelect {
				break
			}
			if st.keyErr != nil {
				return nil, nil, st.keyErr
			}
			v := c.fieldVal(f, st.keySlot, st.keyName)
			next, name := st.defaultNext, st.defaultName
			for i := range st.cases {
				if st.cases[i].value == v {
					next, name = st.cases[i].next, st.cases[i].nextName
					break
				}
			}
			if next == wireStateUndefined {
				return nil, nil, fmt.Errorf("dataplane: parse state %q undefined", name)
			}
			si = next
		}
	}
	off := (r.nbit + 7) / 8
	if off > len(data) {
		off = len(data)
	}
	return f, data[off:], nil
}

// SerializeFlat packs a flat packet's valid headers into wire bytes
// followed by the payload, reading field values straight from the slot
// arrays. Byte-identical to Serialize over the equivalent map packet.
func (c *WireCodec) SerializeFlat(f *FlatPacket, payload []byte) ([]byte, error) {
	w := bitWriter{}
	emitted := make([]bool, len(c.headers))
	emit := func(hi int) error {
		h := &c.headers[hi]
		if emitted[hi] || !c.headerValid(f, h) {
			return nil
		}
		if !h.haveLayout {
			return fmt.Errorf("dataplane: no layout for header %q", h.name)
		}
		for i := range h.fields {
			fl := &h.fields[i]
			w.write(mask(c.fieldVal(f, fl.slot, fl.name), fl.bits), fl.bits)
		}
		emitted[hi] = true
		return nil
	}
	if len(c.states) > 0 {
		si := c.start
		for si >= 0 {
			st := &c.states[si]
			stop := false
			for _, hi := range st.extracts {
				if !c.headerValid(f, &c.headers[hi]) {
					stop = true // parser would extract garbage; packet ends here
					break
				}
				if err := emit(hi); err != nil {
					return nil, err
				}
			}
			if stop || !st.hasSelect {
				break
			}
			if st.keyErr != nil {
				return nil, st.keyErr
			}
			v := c.fieldVal(f, st.keySlot, st.keyName)
			next := st.defaultNext
			for i := range st.cases {
				if st.cases[i].value == v {
					next = st.cases[i].next
					break
				}
			}
			if next == wireStateUndefined {
				break // Serialize walks past undefined states silently
			}
			si = next
		}
	}
	for _, hi := range c.order {
		if err := emit(hi); err != nil {
			return nil, err
		}
	}
	if w.nbit%8 != 0 {
		w.nbit = (w.nbit/8 + 1) * 8 // pad to a byte boundary
	}
	return append(w.buf, payload...), nil
}

// Codec returns the engine's bytes-native wire codec, precompiling the
// program's parse graph against the engine layout on first use.
func (e *Engine) Codec() *WireCodec {
	if e.codec == nil {
		e.codec = NewWireCodec(e.dep.Plan.Input.IR, e.layout)
	}
	return e.codec
}

// ParseBytesFlat parses raw bytes directly into an engine FlatPacket.
func (e *Engine) ParseBytesFlat(data []byte) (*FlatPacket, []byte, error) {
	return e.Codec().ParseBytesFlat(data)
}

// SerializeFlat packs an engine FlatPacket back into wire bytes.
func (e *Engine) SerializeFlat(f *FlatPacket, payload []byte) ([]byte, error) {
	return e.Codec().SerializeFlat(f, payload)
}
