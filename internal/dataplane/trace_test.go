package dataplane

import (
	"strings"
	"testing"
)

func TestDiffPacketsFullComparison(t *testing.T) {
	ref, got := NewPacket(), NewPacket()
	ref.Fields["h.a"] = 1
	got.Fields["h.a"] = 2
	ref.Valid["h"] = true
	got.Dropped = true
	diffs := DiffPackets(ref, got, nil)
	joined := strings.Join(diffs, "\n")
	for _, want := range []string{"h.a: ref=1 got=2", "valid[h]: ref=true got=false", "drop: ref=false got=true"} {
		if !strings.Contains(joined, want) {
			t.Errorf("diffs missing %q:\n%s", want, joined)
		}
	}
}

func TestDiffPacketsOwnedFieldsOnly(t *testing.T) {
	ref, got := NewPacket(), NewPacket()
	ref.Fields["h.mine"] = 1 // differs, owned
	got.Fields["h.mine"] = 9
	ref.Fields["h.other"] = 5 // differs, not owned
	got.Fields["h.other"] = 6
	diffs := DiffPackets(ref, got, []string{"h.mine"})
	if len(diffs) != 1 || !strings.Contains(diffs[0], "h.mine") {
		t.Errorf("owned-field diff = %v, want only h.mine", diffs)
	}
}

func TestDiffPacketsEqual(t *testing.T) {
	ref := NewPacket()
	ref.Fields["h.a"] = 3
	ref.Valid["h"] = true
	if diffs := DiffPackets(ref, ref.Clone(), nil); len(diffs) != 0 {
		t.Errorf("identical packets diff: %v", diffs)
	}
}

// TestRunPathTracedMatchesRunPath: the hop-by-hop traced execution must end
// in exactly the state a single RunPath call produces, with one snapshot
// per hop.
func TestRunPathTracedMatchesRunPath(t *testing.T) {
	src := `
header_type h_t { bit[32] a; bit[32] out; }
header h_t h;
pipeline[P]{alg};
algorithm alg {
  extern dict<bit[32] k, bit[32] v>[64] tbl;
  if (h.a in tbl) {
    h.out = tbl[h.a];
  }
  h.out = h.out + 1;
}
`
	plan, _ := compile(t, src, "alg: [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]")
	tables := NewTables()
	tables.Set("tbl", 7, 70)
	mk := func() *Deployment {
		dep, err := NewDeployment(plan, tables)
		if err != nil {
			t.Fatal(err)
		}
		return dep
	}
	ctx := &Context{SwitchID: 1}
	path := plan.Input.Scopes["alg"].Paths[0]
	pkt := NewPacket()
	pkt.Valid["h"] = true
	pkt.Fields["h.a"] = 7

	want, err := mk().RunPath(path, ctx, pkt)
	if err != nil {
		t.Fatal(err)
	}
	got, trace, err := mk().RunPathTraced(path, ctx, pkt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Summary() != want.Summary() {
		t.Errorf("traced run diverges from RunPath:\n  want %s\n  got  %s", want.Summary(), got.Summary())
	}
	if len(trace) != len(path) {
		t.Fatalf("trace has %d snapshots, want %d", len(trace), len(path))
	}
	if trace[len(trace)-1].Summary != got.Summary() {
		t.Errorf("last snapshot %q != final state %q", trace[len(trace)-1].Summary, got.Summary())
	}
}
