package dataplane

import (
	"math/rand"
	"testing"

	"lyra/internal/encode"
	"lyra/internal/frontend"
	"lyra/internal/lang/checker"
	"lyra/internal/lang/parser"
	"lyra/internal/scope"
	"lyra/internal/topo"
)

// runUnfused executes a path on an engine lowered WITHOUT the
// superinstruction fusion pass — the oracle the fused opcodes are swept
// against.
func runUnfused(dep *Deployment, path []string, ctx *Context, in *Packet) (*Packet, error) {
	eng, err := newEngine(dep, false)
	if err != nil {
		return nil, err
	}
	l := eng.NewLane()
	f := eng.Flatten(in)
	eng.RunPacket(l, path, ctx, f)
	return f.Packet(), nil
}

// engineEquivalenceOneProgram compiles one generated program and asserts
// that for every flow path and packet, every execution tier produces
// output byte-identical to the tree-walking interpreter — the fused
// bytecode engine, the engine with fusion disabled, and the compiled
// backend — comparing both the full field/header maps (via DiffPackets)
// and the packet-op summary.
func engineEquivalenceOneProgram(t *testing.T, src, scopeText string, rng *rand.Rand, nPkts int) {
	t.Helper()
	prog, err := parser.Parse("fuzz.lyra", []byte(src))
	if err != nil {
		t.Fatalf("generator emitted unparseable program: %v\n%s", err, src)
	}
	if err := checker.Check(prog); err != nil {
		t.Fatalf("generator emitted ill-typed program: %v\n%s", err, src)
	}
	irp, err := frontend.Preprocess(prog)
	if err != nil {
		t.Fatalf("preprocess: %v\n%s", err, src)
	}
	frontend.Analyze(irp)
	spec, err := scope.Parse(scopeText)
	if err != nil {
		t.Fatal(err)
	}
	net := topo.Testbed()
	scopes, err := spec.Resolve(net)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := encode.Solve(&encode.Input{IR: irp, Net: net, Scopes: scopes}, nil)
	if err != nil {
		// A genuinely infeasible placement is not an engine bug.
		t.Skipf("solve: %v", err)
	}
	tables := NewTables()
	for i := 0; i < 16; i++ {
		tables.Set("fuzz_table", uint64(rng.Intn(64)), uint64(rng.Uint32()))
	}
	ctx := &Context{SwitchID: 5, IngressTS: 100, EgressTS: 200, QueueLen: 4}
	paths := plan.Input.Scopes["fuzzalg"].Paths
	for i := 0; i < nPkts; i++ {
		pkt := NewPacket()
		pkt.Valid["h"] = true
		pkt.Fields["h.a"] = uint64(rng.Intn(64))
		pkt.Fields["h.b"] = uint64(rng.Intn(64))
		pkt.Fields["h.c"] = uint64(rng.Uint32())
		for _, path := range paths {
			// Fresh deployments per comparison: stateful counters must
			// advance from the same baseline on both sides.
			depI, err := NewDeployment(plan, tables)
			if err != nil {
				t.Fatalf("deployment: %v\n%s", err, src)
			}
			depE, err := NewDeployment(plan, tables)
			if err != nil {
				t.Fatalf("deployment: %v\n%s", err, src)
			}
			want, err := depI.RunPath(path, ctx, pkt)
			if err != nil {
				t.Fatalf("interpreter: %v\n%s", err, src)
			}
			got, err := depE.RunPathEngine(path, ctx, pkt)
			if err != nil {
				t.Fatalf("engine: %v\n%s", err, src)
			}
			if got.Summary() != want.Summary() {
				t.Fatalf("engine diverges on path %v:\n  interp: %s\n  engine: %s\nsource:\n%s",
					path, want.Summary(), got.Summary(), src)
			}
			if diffs := DiffPackets(want, got, nil); len(diffs) > 0 {
				t.Fatalf("engine field diffs on path %v: %v\nsource:\n%s", path, diffs, src)
			}
			depU, err := NewDeployment(plan, tables)
			if err != nil {
				t.Fatalf("deployment: %v\n%s", err, src)
			}
			unfused, err := runUnfused(depU, path, ctx, pkt)
			if err != nil {
				t.Fatalf("unfused engine: %v\n%s", err, src)
			}
			if diffs := DiffPackets(want, unfused, nil); len(diffs) > 0 || unfused.Summary() != want.Summary() {
				t.Fatalf("unfused engine diverges on path %v: %v\n  interp:  %s\n  unfused: %s\nsource:\n%s",
					path, diffs, want.Summary(), unfused.Summary(), src)
			}
			depC, err := NewDeployment(plan, tables)
			if err != nil {
				t.Fatalf("deployment: %v\n%s", err, src)
			}
			comp, err := depC.RunPathCompiled(path, ctx, pkt)
			if err != nil {
				t.Fatalf("compiled: %v\n%s", err, src)
			}
			if diffs := DiffPackets(want, comp, nil); len(diffs) > 0 || comp.Summary() != want.Summary() {
				t.Fatalf("compiled backend diverges on path %v: %v\n  interp:   %s\n  compiled: %s\nsource:\n%s",
					path, diffs, want.Summary(), comp.Summary(), src)
			}
		}
	}
}

// FuzzEngineEquivalence is the native fuzzing harness for the execution
// tiers: each int64 seed expands into a random program via progGen, which
// is compiled PER-SW and checked interpreter vs fused engine vs unfused
// engine vs compiled backend on random packets.
// Run with:
//
//	go test ./internal/dataplane -fuzz FuzzEngineEquivalence
//
// The checked-in seed corpus lives in testdata/fuzz/FuzzEngineEquivalence.
func FuzzEngineEquivalence(f *testing.F) {
	for _, s := range []int64{1, 42, 20200810} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		gen := &progGen{rng: rng}
		src := gen.generate()
		engineEquivalenceOneProgram(t, src, "fuzzalg: [ ToR3 | PER-SW | - ]", rng, 5)
	})
}

// TestEngineFuzzSweepPerSwitch is the deterministic arm of the fuzz
// campaign: a seeded sweep of generated programs checked PER-SW.
func TestEngineFuzzSweepPerSwitch(t *testing.T) {
	rng := rand.New(rand.NewSource(20200810))
	gen := &progGen{rng: rng}
	for p := 0; p < 30; p++ {
		src := gen.generate()
		engineEquivalenceOneProgram(t, src, "fuzzalg: [ ToR3 | PER-SW | - ]", rng, 6)
	}
}

// TestEngineFuzzSweepMultiSwitch repeats the sweep with MULTI-SW placement
// over the pod, so the engine's import/export bridge moves and per-shard
// gate logic face the same random programs as the interpreter's.
func TestEngineFuzzSweepMultiSwitch(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	gen := &progGen{rng: rng}
	for p := 0; p < 15; p++ {
		src := gen.generate()
		engineEquivalenceOneProgram(t,
			src, "fuzzalg: [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]", rng, 6)
	}
}
