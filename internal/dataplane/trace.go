package dataplane

import (
	"fmt"
	"sort"
)

// This file holds the trace-level comparison hooks used by the
// differential tester (internal/difftest): field-granular packet diffs for
// failure reports, and per-hop execution traces that show where along a
// flow path a distributed run departs from the reference semantics.

// DiffPackets compares two packets field by field and returns one line per
// difference ("base.out: ref=3 got=7"). A nil fields slice compares every
// observable dimension: all fields either packet carries, header validity,
// and the packet-level flags. A non-nil fields slice restricts the field
// comparison to the named "hdr.field" entries (the caller's ownership set)
// while still comparing flags; this is what lets the oracle check one
// algorithm's outputs without charging it for fields another algorithm
// writes.
func DiffPackets(ref, got *Packet, fields []string) []string {
	var diffs []string
	if fields == nil {
		seen := map[string]bool{}
		for k := range ref.Fields {
			seen[k] = true
		}
		for k := range got.Fields {
			seen[k] = true
		}
		for k := range seen {
			fields = append(fields, k)
		}
		sort.Strings(fields)
		vseen := map[string]bool{}
		for k := range ref.Valid {
			vseen[k] = true
		}
		for k := range got.Valid {
			vseen[k] = true
		}
		var vkeys []string
		for k := range vseen {
			vkeys = append(vkeys, k)
		}
		sort.Strings(vkeys)
		for _, k := range vkeys {
			if ref.Valid[k] != got.Valid[k] {
				diffs = append(diffs, fmt.Sprintf("valid[%s]: ref=%v got=%v", k, ref.Valid[k], got.Valid[k]))
			}
		}
	}
	for _, f := range fields {
		if rv, gv := ref.Fields[f], got.Fields[f]; rv != gv {
			diffs = append(diffs, fmt.Sprintf("%s: ref=%d got=%d", f, rv, gv))
		}
	}
	if ref.Dropped != got.Dropped {
		diffs = append(diffs, fmt.Sprintf("drop: ref=%v got=%v", ref.Dropped, got.Dropped))
	}
	if ref.EgressPort != got.EgressPort {
		diffs = append(diffs, fmt.Sprintf("egress: ref=%d got=%d", ref.EgressPort, got.EgressPort))
	}
	if ref.Mirrored != got.Mirrored {
		diffs = append(diffs, fmt.Sprintf("mirror: ref=%v got=%v", ref.Mirrored, got.Mirrored))
	}
	if ref.ToCPU != got.ToCPU {
		diffs = append(diffs, fmt.Sprintf("cpu: ref=%v got=%v", ref.ToCPU, got.ToCPU))
	}
	return diffs
}

// HopSnapshot is the packet state observed after one switch of a traced
// path execution.
type HopSnapshot struct {
	Switch  string
	Summary string
}

// RunPathTraced is RunPath with a per-hop packet snapshot after every
// switch, for divergence localization in failure reports. Executing a path
// one hop at a time is semantically identical to one RunPath call: bridge
// variables travel in the packet and per-switch state lives in the
// deployment.
func (d *Deployment) RunPathTraced(path []string, ctx *Context, in *Packet) (*Packet, []HopSnapshot, error) {
	pkt := in.Clone()
	trace := make([]HopSnapshot, 0, len(path))
	for _, sw := range path {
		out, err := d.RunPath([]string{sw}, ctx, pkt)
		if err != nil {
			return nil, trace, fmt.Errorf("at %s: %w", sw, err)
		}
		pkt = out
		trace = append(trace, HopSnapshot{Switch: sw, Summary: pkt.Summary()})
	}
	return pkt, trace, nil
}
