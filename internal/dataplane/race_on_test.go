//go:build race

package dataplane

// raceEnabled reports whether the race detector instruments this build;
// the zero-allocation assertions are skipped under it.
const raceEnabled = true
