package dataplane

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"lyra/internal/encode"
	"lyra/internal/frontend"
	"lyra/internal/lang/checker"
	"lyra/internal/lang/parser"
	"lyra/internal/scope"
	"lyra/internal/topo"
)

// progGen emits random but well-formed Lyra algorithms over a fixed header,
// one extern table, and one global array — covering assignments, nested
// branches, lookups, stateful updates, and packet operations.
type progGen struct {
	rng      *rand.Rand
	b        strings.Builder
	vars     []string
	loBudget int
}

func (g *progGen) pick(ss []string) string { return ss[g.rng.Intn(len(ss))] }

func (g *progGen) leaf() string {
	switch g.rng.Intn(4) {
	case 0:
		return g.pick([]string{"h.a", "h.b", "h.c"})
	case 1:
		if len(g.vars) > 0 {
			return g.pick(g.vars)
		}
		return "h.a"
	case 2:
		return fmt.Sprintf("%d", g.rng.Intn(1<<16))
	default:
		return fmt.Sprintf("0x%x", g.rng.Intn(1<<20))
	}
}

func (g *progGen) expr(depth int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		return g.leaf()
	}
	op := g.pick([]string{"+", "-", "&", "|", "^"})
	if g.rng.Intn(5) == 0 {
		return fmt.Sprintf("(%s << %d)", g.expr(depth-1), g.rng.Intn(8))
	}
	return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), op, g.expr(depth-1))
}

func (g *progGen) cond() string {
	op := g.pick([]string{"==", "!=", "<", ">", "<=", ">="})
	return fmt.Sprintf("%s %s %s", g.leaf(), op, g.leaf())
}

func (g *progGen) stmt(depth, indent int) {
	pad := strings.Repeat("  ", indent)
	switch k := g.rng.Intn(10); {
	case k < 3: // new or reassigned variable
		name := fmt.Sprintf("t%d", g.rng.Intn(4))
		fmt.Fprintf(&g.b, "%s%s = %s;\n", pad, name, g.expr(2))
		g.addVar(name)
	case k < 5: // field write
		fmt.Fprintf(&g.b, "%s%s = %s;\n", pad, g.pick([]string{"h.out", "h.c"}), g.expr(2))
	case k < 7 && depth > 0: // branch
		fmt.Fprintf(&g.b, "%sif (%s) {\n", pad, g.cond())
		n := 1 + g.rng.Intn(2)
		for i := 0; i < n; i++ {
			g.stmt(depth-1, indent+1)
		}
		if g.rng.Intn(2) == 0 {
			fmt.Fprintf(&g.b, "%s} else {\n", pad)
			g.stmt(depth-1, indent+1)
		}
		fmt.Fprintf(&g.b, "%s}\n", pad)
	case k < 8 && g.loBudget > 0: // table lookup
		g.loBudget--
		fmt.Fprintf(&g.b, "%sif (%s in fuzz_table) {\n", pad, g.pick([]string{"h.a", "h.b"}))
		fmt.Fprintf(&g.b, "%s  h.out = fuzz_table[%s];\n", pad, g.pick([]string{"h.a", "h.b"}))
		fmt.Fprintf(&g.b, "%s}\n", pad)
	case k < 9: // stateful counter
		fmt.Fprintf(&g.b, "%scounters[h.a & 15] = counters[h.a & 15] + 1;\n", pad)
	default: // packet op
		fmt.Fprintf(&g.b, "%s%s\n", pad, g.pick([]string{"forward(3);", "mirror();", "copy_to_cpu();"}))
	}
}

func (g *progGen) addVar(name string) {
	for _, v := range g.vars {
		if v == name {
			return
		}
	}
	g.vars = append(g.vars, name)
}

func (g *progGen) generate() string {
	g.b.Reset()
	g.vars = nil
	g.loBudget = 2
	g.b.WriteString(`
header_type h_t { bit[32] a; bit[32] b; bit[32] c; bit[32] out; }
header h_t h;
pipeline[FUZZ]{fuzzalg};
algorithm fuzzalg {
  extern dict<bit[32] k, bit[32] v>[32] fuzz_table;
  global bit[32][16] counters;
`)
	n := 4 + g.rng.Intn(8)
	for i := 0; i < n; i++ {
		g.stmt(2, 1)
	}
	g.b.WriteString("}\n")
	return g.b.String()
}

// TestFuzzEquivalencePerSwitch compiles random programs PER-SW and checks
// reference/distributed equivalence over random packets and table entries.
func TestFuzzEquivalencePerSwitch(t *testing.T) {
	fuzzEquivalence(t, "fuzzalg: [ ToR3 | PER-SW | - ]", [][]string{{"ToR3"}}, 40)
}

// TestFuzzEquivalenceMultiSwitch does the same with MULTI-SW placement over
// the pod, exercising the placement solver, shard replication, and bridge
// variables on every random program.
func TestFuzzEquivalenceMultiSwitch(t *testing.T) {
	fuzzEquivalence(t, "fuzzalg: [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]", nil, 25)
}

// FuzzEquivalence is the native fuzzing harness over the same generator:
// each int64 seed expands into a random program via progGen, which is
// compiled PER-SW and checked for reference/distributed equivalence on
// random packets. Run with:
//
//	go test ./internal/dataplane -fuzz FuzzEquivalence
//
// The checked-in seed corpus lives in testdata/fuzz/FuzzEquivalence.
func FuzzEquivalence(f *testing.F) {
	for _, s := range []int64{1, 42, 20200810} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		gen := &progGen{rng: rng}
		src := gen.generate()
		prog, err := parser.Parse("fuzz.lyra", []byte(src))
		if err != nil {
			t.Fatalf("generator emitted unparseable program: %v\n%s", err, src)
		}
		if err := checker.Check(prog); err != nil {
			t.Fatalf("generator emitted ill-typed program: %v\n%s", err, src)
		}
		irp, err := frontend.Preprocess(prog)
		if err != nil {
			t.Fatalf("preprocess: %v\n%s", err, src)
		}
		frontend.Analyze(irp)
		spec, err := scope.Parse("fuzzalg: [ ToR3 | PER-SW | - ]")
		if err != nil {
			t.Fatal(err)
		}
		net := topo.Testbed()
		scopes, err := spec.Resolve(net)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := encode.Solve(&encode.Input{IR: irp, Net: net, Scopes: scopes}, nil)
		if err != nil {
			// A genuinely infeasible placement is not an equivalence bug.
			t.Skipf("solve: %v", err)
		}
		tables := NewTables()
		for i := 0; i < 16; i++ {
			tables.Set("fuzz_table", uint64(rng.Intn(64)), uint64(rng.Uint32()))
		}
		ctx := &Context{SwitchID: 5, IngressTS: 100, EgressTS: 200, QueueLen: 4}
		for i := 0; i < 5; i++ {
			pkt := NewPacket()
			pkt.Valid["h"] = true
			pkt.Fields["h.a"] = uint64(rng.Intn(64))
			pkt.Fields["h.b"] = uint64(rng.Intn(64))
			pkt.Fields["h.c"] = uint64(rng.Uint32())
			// Fresh deployment and reference per packet: stateful counters
			// must advance from the same baseline on both sides.
			dep, err := NewDeployment(plan, tables)
			if err != nil {
				t.Fatalf("deployment: %v\n%s", err, src)
			}
			ref, err := RunReference(irp, tables, ctx, pkt)
			if err != nil {
				t.Fatalf("reference: %v\n%s", err, src)
			}
			got, err := dep.RunPath([]string{"ToR3"}, ctx, pkt)
			if err != nil {
				t.Fatalf("distributed: %v\n%s", err, src)
			}
			if got.Summary() != ref.Summary() {
				t.Fatalf("seed %d diverges:\n  ref:  %s\n  dist: %s\nsource:\n%s",
					seed, ref.Summary(), got.Summary(), src)
			}
		}
	})
}

func fuzzEquivalence(t *testing.T, scopeText string, fixedPaths [][]string, nProgs int) {
	t.Helper()
	rng := rand.New(rand.NewSource(20200810))
	gen := &progGen{rng: rng}
	for p := 0; p < nProgs; p++ {
		src := gen.generate()
		plan, irp := compile(t, src, scopeText)

		tables := NewTables()
		for i := 0; i < 16; i++ {
			tables.Set("fuzz_table", uint64(rng.Intn(64)), uint64(rng.Uint32()))
		}
		dep, err := NewDeployment(plan, tables)
		if err != nil {
			t.Fatalf("program %d: deployment: %v\n%s", p, err, src)
		}
		paths := fixedPaths
		if paths == nil {
			paths = plan.Input.Scopes["fuzzalg"].Paths
		}
		ctx := &Context{SwitchID: 5, IngressTS: 100, EgressTS: 200, QueueLen: 4}
		for i := 0; i < 20; i++ {
			pkt := NewPacket()
			pkt.Valid["h"] = true
			pkt.Fields["h.a"] = uint64(rng.Intn(64))
			pkt.Fields["h.b"] = uint64(rng.Intn(64))
			pkt.Fields["h.c"] = uint64(rng.Uint32())
			ref, err := RunReference(irp, tables, ctx, pkt)
			if err != nil {
				t.Fatalf("program %d: reference: %v\n%s", p, err, src)
			}
			for _, path := range paths {
				// Stateful counters advance per run; rebuild the deployment
				// for a clean comparison when the program touches them.
				freshDep := dep
				if strings.Contains(src, "counters[") {
					freshDep, err = NewDeployment(plan, tables)
					if err != nil {
						t.Fatal(err)
					}
				}
				got, err := freshDep.RunPath(path, ctx, pkt)
				if err != nil {
					t.Fatalf("program %d path %v: %v\n%s", p, path, err, src)
				}
				want := ref
				if strings.Contains(src, "counters[") {
					// Re-run reference against fresh globals for parity.
					want, err = RunReference(irp, tables, ctx, pkt)
					if err != nil {
						t.Fatal(err)
					}
				}
				if got.Summary() != want.Summary() {
					t.Fatalf("program %d diverges on path %v:\n  ref:  %s\n  dist: %s\nsource:\n%s",
						p, path, want.Summary(), got.Summary(), src)
				}
			}
		}
	}
}
