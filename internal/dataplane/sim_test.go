package dataplane

import (
	"math/rand"
	"testing"

	"lyra/internal/encode"
	"lyra/internal/frontend"
	"lyra/internal/ir"
	"lyra/internal/lang/checker"
	"lyra/internal/lang/parser"
	"lyra/internal/scope"
	"lyra/internal/topo"
)

func compile(t testing.TB, src, scopeText string) (*encode.Plan, *ir.Program) {
	t.Helper()
	prog, err := parser.Parse("test.lyra", []byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := checker.Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	irp, err := frontend.Preprocess(prog)
	if err != nil {
		t.Fatalf("preprocess: %v", err)
	}
	frontend.Analyze(irp)
	spec, err := scope.Parse(scopeText)
	if err != nil {
		t.Fatalf("scope: %v", err)
	}
	net := topo.Testbed()
	scopes, err := spec.Resolve(net)
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	plan, err := encode.Solve(&encode.Input{IR: irp, Net: net, Scopes: scopes}, nil)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	return plan, irp
}

const lbSrc = `
header_type ipv4_t { bit[32] srcAddr; bit[32] dstAddr; bit[8] protocol; }
header ipv4_t ipv4;
header_type tcp_t { bit[16] srcPort; bit[16] dstPort; }
header tcp_t tcp;
pipeline[LB]{loadbalancer};
algorithm loadbalancer {
  extern dict<bit[32] hash, bit[32] ip>[64] conn_table;
  extern dict<bit[32] vip, bit[32] dip>[64] vip_table;
  bit[32] hash;
  hash = crc32_hash(ipv4.srcAddr, ipv4.dstAddr, ipv4.protocol, tcp.srcPort, tcp.dstPort);
  if (hash in conn_table) {
    ipv4.dstAddr = conn_table[hash];
  } else {
    if (ipv4.dstAddr in vip_table) {
      ipv4.dstAddr = vip_table[ipv4.dstAddr];
    }
  }
}
`

const lbScope = `loadbalancer: [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]`

func randomLBPacket(rng *rand.Rand) *Packet {
	p := NewPacket()
	p.Valid["ipv4"] = true
	p.Valid["tcp"] = true
	p.Fields["ipv4.srcAddr"] = uint64(rng.Uint32())
	p.Fields["ipv4.dstAddr"] = uint64(rng.Intn(16)) // small space to force VIP hits
	p.Fields["ipv4.protocol"] = 6
	p.Fields["tcp.srcPort"] = uint64(rng.Intn(1 << 16))
	p.Fields["tcp.dstPort"] = 80
	return p
}

// TestLBEquivalence is the core compilation-correctness property: for every
// flow path, the distributed compiled programs transform packets exactly as
// the one-big-pipeline reference semantics.
func TestLBEquivalence(t *testing.T) {
	plan, irp := compile(t, lbSrc, lbScope)
	rng := rand.New(rand.NewSource(1))

	tables := NewTables()
	// Populate VIP table fully and conn_table sparsely.
	for vip := uint64(0); vip < 16; vip++ {
		tables.Set("vip_table", vip, 0xC0A80000+vip)
	}
	// Install conn entries for hashes of a few known packets.
	var knownPkts []*Packet
	for i := 0; i < 8; i++ {
		p := randomLBPacket(rng)
		knownPkts = append(knownPkts, p)
		h := hashOf("crc32_hash", []uint64{
			p.Fields["ipv4.srcAddr"], p.Fields["ipv4.dstAddr"], p.Fields["ipv4.protocol"],
			p.Fields["tcp.srcPort"], p.Fields["tcp.dstPort"],
		}, 32)
		tables.Set("conn_table", h, 0x0A000000+uint64(i))
	}

	dep, err := NewDeployment(plan, tables)
	if err != nil {
		t.Fatalf("deployment: %v", err)
	}
	ctx := &Context{SwitchID: 7, IngressTS: 1000, EgressTS: 1500, QueueLen: 3}
	paths := plan.Input.Scopes["loadbalancer"].Paths

	check := func(p *Packet, label string) {
		ref, err := RunReference(irp, tables, ctx, p)
		if err != nil {
			t.Fatalf("reference: %v", err)
		}
		for _, path := range paths {
			got, err := dep.RunPath(path, ctx, p)
			if err != nil {
				t.Fatalf("path %v: %v", path, err)
			}
			if got.Summary() != ref.Summary() {
				t.Errorf("%s on %v:\n  ref:  %s\n  dist: %s", label, path, ref.Summary(), got.Summary())
			}
		}
	}
	for i, p := range knownPkts {
		check(p, "known")
		_ = i
	}
	for i := 0; i < 200; i++ {
		check(randomLBPacket(rng), "random")
	}
}

// TestLBSplitEquivalence repeats the property with a ConnTable too large
// for one switch, exercising shard gating and bridge-variable transport.
func TestLBSplitEquivalence(t *testing.T) {
	big := replaceAll(lbSrc, "[64] conn_table", "[4000000] conn_table")
	big = replaceAll(big, "[64] vip_table", "[1000000] vip_table")
	plan, irp := compile(t, big, lbScope)

	if len(plan.Shards["conn_table"]) < 2 {
		t.Fatalf("conn_table not split: %v", plan.Shards["conn_table"])
	}

	rng := rand.New(rand.NewSource(2))
	tables := NewTables()
	for vip := uint64(0); vip < 16; vip++ {
		tables.Set("vip_table", vip, 0xC0A80000+vip)
	}
	var knownPkts []*Packet
	for i := 0; i < 32; i++ {
		p := randomLBPacket(rng)
		knownPkts = append(knownPkts, p)
		h := hashOf("crc32_hash", []uint64{
			p.Fields["ipv4.srcAddr"], p.Fields["ipv4.dstAddr"], p.Fields["ipv4.protocol"],
			p.Fields["tcp.srcPort"], p.Fields["tcp.dstPort"],
		}, 32)
		tables.Set("conn_table", h, 0x0A000000+uint64(i))
	}
	dep, err := NewDeployment(plan, tables)
	if err != nil {
		t.Fatalf("deployment: %v", err)
	}
	ctx := &Context{}
	paths := plan.Input.Scopes["loadbalancer"].Paths
	for _, p := range append(knownPkts, manyRandom(rng, 100)...) {
		ref, err := RunReference(irp, tables, ctx, p)
		if err != nil {
			t.Fatalf("reference: %v", err)
		}
		for _, path := range paths {
			got, err := dep.RunPath(path, ctx, p)
			if err != nil {
				t.Fatalf("path: %v", err)
			}
			if got.Summary() != ref.Summary() {
				t.Errorf("split mismatch on %v:\n  ref:  %s\n  dist: %s", path, ref.Summary(), got.Summary())
			}
		}
	}
}

func manyRandom(rng *rand.Rand, n int) []*Packet {
	out := make([]*Packet, n)
	for i := range out {
		out[i] = randomLBPacket(rng)
	}
	return out
}

func replaceAll(s, old, new string) string {
	for {
		i := -1
		for j := 0; j+len(old) <= len(s); j++ {
			if s[j:j+len(old)] == old {
				i = j
				break
			}
		}
		if i < 0 {
			return s
		}
		s = s[:i] + new + s[i+len(old):]
	}
}

func TestReferenceArithmetic(t *testing.T) {
	src := `
header_type h_t { bit[32] a; bit[32] b; bit[32] out; }
header h_t h;
pipeline[P]{calc};
algorithm calc {
  bit[32] x;
  x = (h.a - h.b) & 0x0fffffff;
  x = x | (h.a << 4);
  if (h.a == h.b) {
    h.out = 1;
  } else {
    h.out = x;
  }
}
`
	plan, irp := compile(t, src, "calc: [ ToR3 | PER-SW | - ]")
	_ = plan
	tables := NewTables()
	ctx := &Context{}
	mk := func(a, b uint64) *Packet {
		p := NewPacket()
		p.Valid["h"] = true
		p.Fields["h.a"] = a
		p.Fields["h.b"] = b
		return p
	}
	out, err := RunReference(irp, tables, ctx, mk(5, 5))
	if err != nil {
		t.Fatal(err)
	}
	if out.Fields["h.out"] != 1 {
		t.Errorf("equal branch: out = %d", out.Fields["h.out"])
	}
	out, _ = RunReference(irp, tables, ctx, mk(10, 4))
	want := ((uint64(10)-4)&0x0fffffff | (10 << 4)) & 0xffffffff
	if out.Fields["h.out"] != want {
		t.Errorf("out = %d, want %d", out.Fields["h.out"], want)
	}
}

func TestPerSwitchEquivalence(t *testing.T) {
	src := `
header_type h_t { bit[32] a; bit[32] out; }
header h_t h;
pipeline[P]{marker};
algorithm marker {
  extern list<bit[32] k>[16] watch;
  if (h.a in watch) {
    h.out = h.a + 1;
    forward(3);
  }
}
`
	// PER-SW on ToRs: each path (single ToR) runs exactly one copy.
	plan, irp := compile(t, src, "marker: [ ToR3 | PER-SW | - ]")
	tables := NewTables()
	for k := uint64(0); k < 16; k += 2 {
		tables.Set("watch", k, 0)
	}
	dep, err := NewDeployment(plan, tables)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &Context{}
	for a := uint64(0); a < 20; a++ {
		p := NewPacket()
		p.Valid["h"] = true
		p.Fields["h.a"] = a
		ref, _ := RunReference(irp, tables, ctx, p)
		got, err := dep.RunPath([]string{"ToR3"}, ctx, p)
		if err != nil {
			t.Fatal(err)
		}
		if got.Summary() != ref.Summary() {
			t.Errorf("a=%d:\n  ref:  %s\n  dist: %s", a, ref.Summary(), got.Summary())
		}
	}
}

func TestGlobalCounter(t *testing.T) {
	src := `
header_type h_t { bit[8] idx; bit[32] seen; }
header h_t h;
pipeline[P]{count};
algorithm count {
  global bit[32][16] counter;
  counter[h.idx] = counter[h.idx] + 1;
  h.seen = counter[h.idx];
}
`
	plan, irp := compile(t, src, "count: [ ToR3 | PER-SW | - ]")
	tables := NewTables()
	dep, err := NewDeployment(plan, tables)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &Context{}
	// Statefulness across packets: the distributed switch and a fresh
	// reference store must agree packet-by-packet.
	refGlobals := globalStore{}
	for i := 1; i <= 5; i++ {
		p := NewPacket()
		p.Valid["h"] = true
		p.Fields["h.idx"] = 3
		// Reference with persistent globals.
		x := &execEnv{env: map[*ir.Var]uint64{}, pkt: p.Clone(), tables: tables,
			globals: refGlobals, ctx: ctx, irp: irp, lookup: tables.Lookup}
		for _, instr := range irp.Algorithm("count").Instrs {
			if guardHolds(instr.Guard, x.env) {
				if err := x.step(instr); err != nil {
					t.Fatal(err)
				}
			}
		}
		got, err := dep.RunPath([]string{"ToR3"}, ctx, p)
		if err != nil {
			t.Fatal(err)
		}
		if got.Fields["h.seen"] != uint64(i) || x.pkt.Fields["h.seen"] != uint64(i) {
			t.Errorf("packet %d: dist=%d ref=%d", i, got.Fields["h.seen"], x.pkt.Fields["h.seen"])
		}
	}
}

func TestPacketOps(t *testing.T) {
	src := `
header_type h_t { bit[8] kind; }
header h_t h;
pipeline[P]{sec};
algorithm sec {
  if (h.kind == 1) { drop(); }
  if (h.kind == 2) { mirror(); }
  if (h.kind == 3) { copy_to_cpu(); }
  if (h.kind == 4) { forward(9); }
}
`
	_, irp := compile(t, src, "sec: [ ToR3 | PER-SW | - ]")
	ctx := &Context{}
	tables := NewTables()
	cases := []struct {
		kind  uint64
		check func(*Packet) bool
	}{
		{1, func(p *Packet) bool { return p.Dropped }},
		{2, func(p *Packet) bool { return p.Mirrored }},
		{3, func(p *Packet) bool { return p.ToCPU }},
		{4, func(p *Packet) bool { return p.EgressPort == 9 }},
	}
	for _, c := range cases {
		p := NewPacket()
		p.Valid["h"] = true
		p.Fields["h.kind"] = c.kind
		out, err := RunReference(irp, tables, ctx, p)
		if err != nil {
			t.Fatal(err)
		}
		if !c.check(out) {
			t.Errorf("kind %d: %s", c.kind, out.Summary())
		}
	}
}

func TestHeaderAddRemove(t *testing.T) {
	src := `
header_type probe_t { bit[8] hops; }
header probe_t probe;
header_type h_t { bit[8] f; }
header h_t h;
pipeline[P]{intish};
algorithm intish {
  if (h.f == 1) {
    add_header(probe);
    probe.hops = 0;
  }
  if (h.f == 2) {
    remove_header(probe);
  }
}
`
	_, irp := compile(t, src, "intish: [ ToR3 | PER-SW | - ]")
	tables := NewTables()
	ctx := &Context{}
	p := NewPacket()
	p.Valid["h"] = true
	p.Fields["h.f"] = 1
	out, err := RunReference(irp, tables, ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Valid["probe"] || out.Fields["probe.hops"] != 0 {
		t.Errorf("probe not added: %s", out.Summary())
	}
	p.Fields["h.f"] = 2
	p.Valid["probe"] = true
	out, _ = RunReference(irp, tables, ctx, p)
	if out.Valid["probe"] {
		t.Error("probe not removed")
	}
}

func TestExternInsertStateful(t *testing.T) {
	src := `
header_type h_t { bit[32] key; bit[32] out; }
header h_t h;
pipeline[P]{learn};
algorithm learn {
  extern dict<bit[32] k, bit[32] v>[16] cache;
  if (h.key in cache) {
    h.out = cache[h.key];
  } else {
    insert(cache, h.key, 42);
  }
}
`
	_, irp := compile(t, src, "learn: [ ToR3 | PER-SW | - ]")
	tables := NewTables()
	ctx := &Context{}
	p := NewPacket()
	p.Valid["h"] = true
	p.Fields["h.key"] = 5
	// First packet misses and installs; second hits.
	out1, err := RunReference(irp, tables, ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if out1.Fields["h.out"] != 0 {
		t.Errorf("first packet should miss, out=%d", out1.Fields["h.out"])
	}
	out2, _ := RunReference(irp, tables, ctx, p)
	if out2.Fields["h.out"] != 42 {
		t.Errorf("second packet should hit, out=%d", out2.Fields["h.out"])
	}
}

func TestMaskRespectsWidths(t *testing.T) {
	if mask(0x1ff, 8) != 0xff {
		t.Error("mask 8 failed")
	}
	if mask(5, 0) != 5 || mask(5, 64) != 5 {
		t.Error("mask passthrough failed")
	}
}
