package dataplane

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestCompiledMatchesInterpreterLB checks byte-identical output between
// RunPath and the compiled backend on the LB workload across every flow
// path.
func TestCompiledMatchesInterpreterLB(t *testing.T) {
	dep, _, paths := lbDeployment(t)
	rng := rand.New(rand.NewSource(2))
	ctx := &Context{SwitchID: 7, IngressTS: 1000, EgressTS: 1500, QueueLen: 3}
	for i := 0; i < 50; i++ {
		pkt := randomLBPacket(rng)
		for _, path := range paths {
			want, err := dep.RunPath(path, ctx, pkt)
			if err != nil {
				t.Fatalf("interpreter: %v", err)
			}
			got, err := dep.RunPathCompiled(path, ctx, pkt)
			if err != nil {
				t.Fatalf("compiled: %v", err)
			}
			if got.Summary() != want.Summary() {
				t.Fatalf("packet %d path %v:\n  interp:   %s\n  compiled: %s",
					i, path, want.Summary(), got.Summary())
			}
			if diffs := DiffPackets(want, got, nil); len(diffs) > 0 {
				t.Fatalf("packet %d path %v diffs: %v", i, path, diffs)
			}
		}
	}
}

// TestCompiledReferenceMatchesInterpreter checks the compiled reference
// unit against RunReference.
func TestCompiledReferenceMatchesInterpreter(t *testing.T) {
	dep, tables, _ := lbDeployment(t)
	comp, err := dep.Compiled()
	if err != nil {
		t.Fatalf("compiled: %v", err)
	}
	irp := dep.Plan.Input.IR
	rng := rand.New(rand.NewSource(3))
	ctx := &Context{SwitchID: 1}
	for i := 0; i < 50; i++ {
		pkt := randomLBPacket(rng)
		want, err := RunReference(irp, tables, ctx, pkt)
		if err != nil {
			t.Fatalf("reference: %v", err)
		}
		lane := comp.NewLane()
		f := comp.Flatten(pkt)
		comp.RunReference(lane, ctx, f)
		got := f.Packet()
		if got.Summary() != want.Summary() {
			t.Fatalf("packet %d:\n  interp:   %s\n  compiled: %s", i, want.Summary(), got.Summary())
		}
	}
}

// TestCompiledStatefulSequence runs a packet sequence through one compiled
// lane and through the interpreter on a fresh deployment each, asserting
// identical evolution of register state, inserts, and packet outputs.
func TestCompiledStatefulSequence(t *testing.T) {
	plan, _ := compile(t, statefulSrc, statefulScope)
	tables := NewTables()
	tables.Set("seen_table", 999, 5)

	depInterp, err := NewDeployment(plan, tables)
	if err != nil {
		t.Fatal(err)
	}
	depComp, err := NewDeployment(plan, tables)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := depComp.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	lane := comp.NewLane()

	ctx := &Context{SwitchID: 3, QueueLen: 2}
	rng := rand.New(rand.NewSource(11))
	path := []string{"ToR3"}
	for i := 0; i < 64; i++ {
		pkt := NewPacket()
		pkt.Valid["h"] = true
		pkt.Fields["h.a"] = uint64(rng.Intn(8)) // collide often: counters advance
		pkt.Fields["h.b"] = uint64(rng.Intn(4))
		want, err := depInterp.RunPath(path, ctx, pkt)
		if err != nil {
			t.Fatalf("interpreter: %v", err)
		}
		f := comp.Flatten(pkt)
		comp.RunPacket(lane, path, ctx, f)
		got := f.Packet()
		if got.Summary() != want.Summary() {
			t.Fatalf("packet %d diverges:\n  interp:   %s\n  compiled: %s", i, want.Summary(), got.Summary())
		}
	}
}

// TestCompiledLaneInterchangeable: a lane alternating between the engine
// and compiled tiers mid-stream must evolve state exactly as a lane run
// entirely on one tier — the two backends share lane state by design.
func TestCompiledLaneInterchangeable(t *testing.T) {
	plan, _ := compile(t, statefulSrc, statefulScope)
	tables := NewTables()
	depA, err := NewDeployment(plan, tables)
	if err != nil {
		t.Fatal(err)
	}
	depB, err := NewDeployment(plan, tables)
	if err != nil {
		t.Fatal(err)
	}
	engA, err := depA.Engine()
	if err != nil {
		t.Fatal(err)
	}
	compA, err := depA.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	engB, err := depB.Engine()
	if err != nil {
		t.Fatal(err)
	}
	laneMix := engA.NewLane()
	lanePure := engB.NewLane()
	ctx := &Context{SwitchID: 3}
	path := []string{"ToR3"}
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 32; i++ {
		pkt := NewPacket()
		pkt.Valid["h"] = true
		pkt.Fields["h.a"] = uint64(rng.Intn(8))
		pkt.Fields["h.b"] = uint64(rng.Intn(4))
		fm := engA.Flatten(pkt)
		if i%2 == 0 {
			engA.RunPacket(laneMix, path, ctx, fm)
		} else {
			compA.RunPacket(laneMix, path, ctx, fm)
		}
		fp := engB.Flatten(pkt)
		engB.RunPacket(lanePure, path, ctx, fp)
		if fm.Packet().Summary() != fp.Packet().Summary() {
			t.Fatalf("packet %d: mixed-tier lane diverged:\n  pure:  %s\n  mixed: %s",
				i, fp.Packet().Summary(), fm.Packet().Summary())
		}
	}
}

// TestCompiledRunBatchMatchesSequential: sharded compiled replay must
// match one-at-a-time execution at every worker count.
func TestCompiledRunBatchMatchesSequential(t *testing.T) {
	dep, _, paths := lbDeployment(t)
	comp, err := dep.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	ctx := &Context{SwitchID: 2}
	const n = 256
	mk := func() []*FlatPacket {
		r := rand.New(rand.NewSource(5))
		out := make([]*FlatPacket, n)
		for i := range out {
			out[i] = comp.Flatten(randomLBPacket(r))
		}
		return out
	}
	base := mk()
	comp.RunBatch(paths[0], ctx, base, 1)
	for _, workers := range []int{2, 4, 7} {
		got := mk()
		comp.RunBatch(paths[0], ctx, got, workers)
		for i := range got {
			if got[i].Packet().Summary() != base[i].Packet().Summary() {
				t.Fatalf("workers=%d packet %d diverges from sequential", workers, i)
			}
		}
	}
}

// TestCompiledGuardHoisting: the block grouping must actually group — the
// stateful program's three-statement if branch if-converts to adjacent
// instructions under one guard, so its block should hold multiple ops
// with the guard hoisted rather than one op each.
func TestCompiledGuardHoisting(t *testing.T) {
	plan, _ := compile(t, statefulSrc, statefulScope)
	dep, err := NewDeployment(plan, NewTables())
	if err != nil {
		t.Fatal(err)
	}
	comp, err := dep.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	hoisted := false
	for _, cu := range comp.units {
		ops, guarded := 0, 0
		for _, b := range cu.blocks {
			ops += len(b.ops)
			if len(b.guards) > 0 && len(b.ops) > 1 {
				guarded++
			}
		}
		if len(cu.blocks) < ops && guarded > 0 {
			hoisted = true
		}
	}
	if !hoisted {
		t.Fatal("no unit produced a multi-op guarded block; guard hoisting is not happening")
	}
}

// TestFusionProducesSuperinstructions: the LB program's hash-then-member
// pair must actually fuse, and single-conjunct guards must inline.
func TestFusionProducesSuperinstructions(t *testing.T) {
	dep, _, _ := lbDeployment(t)
	eng, err := dep.Engine()
	if err != nil {
		t.Fatal(err)
	}
	fusedHash, inlined := false, false
	for _, u := range eng.units {
		for i := range u.code {
			switch u.code[i].op {
			case bHashMember, bHashLookup, bBinSelect:
				fusedHash = true
			}
			if u.code[i].g1reg >= 0 {
				inlined = true
			}
		}
	}
	if !fusedHash {
		t.Fatal("crc32_hash -> conn_table membership did not fuse into a superinstruction")
	}
	if !inlined {
		t.Fatal("no single-conjunct guard was inlined")
	}
	// And the unfused engine must keep the plain opcodes.
	unfused, err := newEngine(dep, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range unfused.units {
		for i := range u.code {
			switch u.code[i].op {
			case bHashMember, bHashLookup, bBinSelect:
				t.Fatal("fusion pass ran on the unfused oracle engine")
			}
		}
	}
}

// TestCompiledSteadyStateZeroAlloc is the acceptance gate for the fastest
// tier: the compiled execute loop must not allocate once lanes and packets
// exist.
func TestCompiledSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	dep, _, paths := lbDeployment(t)
	comp, err := dep.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	lane := comp.NewLane()
	ctx := &Context{SwitchID: 2, IngressTS: 5}
	rng := rand.New(rand.NewSource(6))
	tmpl := comp.Flatten(randomLBPacket(rng))
	f := comp.NewFlatPacket()
	path := paths[0]
	for i := 0; i < 10; i++ { // warm up: first runs may grow runtime stacks
		f.CopyFrom(tmpl)
		comp.RunPacket(lane, path, ctx, f)
	}
	allocs := testing.AllocsPerRun(200, func() {
		f.CopyFrom(tmpl)
		comp.RunPacket(lane, path, ctx, f)
	})
	if allocs != 0 {
		t.Fatalf("steady-state compiled loop allocates %.1f times per packet, want 0", allocs)
	}
	batch := []*FlatPacket{f}
	comp.RunBatch(path, ctx, batch, 1)
	allocs = testing.AllocsPerRun(200, func() {
		f.CopyFrom(tmpl)
		comp.RunBatch(path, ctx, batch, 1)
	})
	if allocs != 0 {
		t.Fatalf("single-worker compiled RunBatch allocates %.1f times per packet, want 0", allocs)
	}
}

// BenchmarkCompiledPath measures single-packet compiled execution — the
// number to hold against BenchmarkEnginePath.
func BenchmarkCompiledPath(b *testing.B) {
	dep, _, paths := lbDeployment(b)
	comp, err := dep.Compiled()
	if err != nil {
		b.Fatal(err)
	}
	lane := comp.NewLane()
	rng := rand.New(rand.NewSource(8))
	tmpls := make([]*FlatPacket, 1024)
	for i := range tmpls {
		tmpls[i] = comp.Flatten(randomLBPacket(rng))
	}
	f := comp.NewFlatPacket()
	ctx := &Context{SwitchID: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.CopyFrom(tmpls[i%len(tmpls)])
		comp.RunPacket(lane, paths[0], ctx, f)
	}
	reportPPS(b)
}

// BenchmarkCompiledBatch measures sharded compiled batch replay.
func BenchmarkCompiledBatch(b *testing.B) {
	for _, bench := range []struct {
		batch   int
		workers int
	}{{64, 1}, {1024, 1}, {1024, 0}} {
		name := fmt.Sprintf("batch=%d/workers=%d", bench.batch, bench.workers)
		b.Run(name, func(b *testing.B) {
			dep, _, paths := lbDeployment(b)
			comp, err := dep.Compiled()
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(8))
			tmpls := make([]*FlatPacket, bench.batch)
			work := make([]*FlatPacket, bench.batch)
			for i := range tmpls {
				tmpls[i] = comp.Flatten(randomLBPacket(rng))
				work[i] = comp.NewFlatPacket()
			}
			ctx := &Context{SwitchID: 2}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range work {
					work[j].CopyFrom(tmpls[j])
				}
				comp.RunBatch(paths[0], ctx, work, bench.workers)
			}
			b.StopTimer()
			pkts := float64(b.N) * float64(bench.batch)
			b.ReportMetric(pkts/b.Elapsed().Seconds(), "pkts/s")
		})
	}
}
