package dataplane

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitWriterReaderRoundTrip(t *testing.T) {
	f := func(vals []uint32, widths []uint8) bool {
		w := &bitWriter{}
		var want []uint64
		var bits []int
		for i, v := range vals {
			if i >= len(widths) {
				break
			}
			b := int(widths[i]%33) + 1 // 1..33 bits
			want = append(want, mask(uint64(v), b))
			bits = append(bits, b)
			w.write(uint64(v), b)
		}
		r := &bitReader{buf: w.buf}
		for i, b := range bits {
			got, err := r.read(b)
			if err != nil || got != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitReaderTruncation(t *testing.T) {
	r := &bitReader{buf: []byte{0xff}}
	if _, err := r.read(9); err == nil {
		t.Fatal("reading past the end must fail")
	}
}

const wireSrc = `
header_type ethernet_t { bit[48] dst_mac; bit[48] src_mac; bit[16] ether_type; }
header ethernet_t ethernet;
header_type ipv4_t { bit[8] ttl; bit[8] protocol; bit[32] src_ip; bit[32] dst_ip; }
header ipv4_t ipv4;
header_type probe_t { bit[8] hop_count; bit[8] msg_type; }
header probe_t probe;
parser_node start {
  extract(ethernet);
  select(ethernet.ether_type) {
    0x0800: parse_ipv4;
    0x0801: parse_probe;
    default: accept;
  }
}
parser_node parse_probe {
  extract(probe);
  select(probe.msg_type) {
    1: parse_ipv4;
    default: accept;
  }
}
parser_node parse_ipv4 { extract(ipv4); }
pipeline[P]{noop};
algorithm noop { x = ethernet.ether_type; }
`

func TestWireRoundTripWithParseGraph(t *testing.T) {
	_, irp := compile(t, wireSrc, "noop: [ ToR3 | PER-SW | - ]")
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		pkt := NewPacket()
		pkt.Valid["ethernet"] = true
		pkt.Fields["ethernet.dst_mac"] = uint64(rng.Int63()) & (1<<48 - 1)
		pkt.Fields["ethernet.src_mac"] = uint64(rng.Int63()) & (1<<48 - 1)
		withProbe := rng.Intn(2) == 0
		if withProbe {
			pkt.Fields["ethernet.ether_type"] = 0x0801
			pkt.Valid["probe"] = true
			pkt.Fields["probe.msg_type"] = 1
			pkt.Fields["probe.hop_count"] = uint64(rng.Intn(256))
		} else {
			pkt.Fields["ethernet.ether_type"] = 0x0800
		}
		pkt.Valid["ipv4"] = true
		pkt.Fields["ipv4.ttl"] = 64
		pkt.Fields["ipv4.protocol"] = 6
		pkt.Fields["ipv4.src_ip"] = uint64(rng.Uint32())
		pkt.Fields["ipv4.dst_ip"] = uint64(rng.Uint32())

		payload := make([]byte, rng.Intn(32))
		rng.Read(payload)

		data, err := Serialize(irp, pkt, payload)
		if err != nil {
			t.Fatal(err)
		}
		got, gotPayload, err := ParseBytes(irp, data)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotPayload, payload) {
			t.Fatalf("payload mismatch: %x vs %x", gotPayload, payload)
		}
		for k, v := range pkt.Fields {
			if got.Fields[k] != v {
				t.Fatalf("field %s = %d, want %d", k, got.Fields[k], v)
			}
		}
		for h, valid := range pkt.Valid {
			if got.Valid[h] != valid {
				t.Fatalf("validity %s = %v, want %v", h, got.Valid[h], valid)
			}
		}
	}
}

func TestWireUnknownEtherTypeStopsParsing(t *testing.T) {
	_, irp := compile(t, wireSrc, "noop: [ ToR3 | PER-SW | - ]")
	pkt := NewPacket()
	pkt.Valid["ethernet"] = true
	pkt.Fields["ethernet.ether_type"] = 0x86DD // not in the parse graph
	data, err := Serialize(irp, pkt, []byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	got, payload, err := ParseBytes(irp, data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Valid["ipv4"] || got.Valid["probe"] {
		t.Error("unexpected headers parsed")
	}
	if !bytes.Equal(payload, []byte{1, 2, 3}) {
		t.Errorf("payload = %x", payload)
	}
}

// TestWireINTGrowsPacket: running ingress INT adds the probe header, which
// must show up as extra on-the-wire bytes — the Figure 1(b) observable.
func TestWireINTGrowsPacket(t *testing.T) {
	src := `
header_type ethernet_t { bit[48] dst_mac; bit[48] src_mac; bit[16] ether_type; }
header ethernet_t ethernet;
header_type probe_t { bit[8] hop_count; bit[8] msg_type; }
header probe_t probe;
parser_node start {
  extract(ethernet);
  select(ethernet.ether_type) {
    0x0801: parse_probe;
    default: accept;
  }
}
parser_node parse_probe { extract(probe); }
pipeline[P]{int_in};
algorithm int_in {
  extern list<bit[48] mac>[16] watch;
  if (ethernet.src_mac in watch) {
    add_header(probe);
    probe.msg_type = 1;
    probe.hop_count = 1;
    ethernet.ether_type = 0x0801;
  }
}
`
	plan, irp := compile(t, src, "int_in: [ ToR3 | PER-SW | - ]")
	tables := NewTables()
	tables.Set("watch", 0xAABBCCDDEE, 1)
	dep, err := NewDeployment(plan, tables)
	if err != nil {
		t.Fatal(err)
	}
	in := NewPacket()
	in.Valid["ethernet"] = true
	in.Fields["ethernet.src_mac"] = 0xAABBCCDDEE
	in.Fields["ethernet.ether_type"] = 0x0800
	before, err := Serialize(irp, in, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := dep.RunPath([]string{"ToR3"}, &Context{}, in)
	if err != nil {
		t.Fatal(err)
	}
	after, err := Serialize(irp, out, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before)+2 { // probe_t is 16 bits
		t.Fatalf("wire growth = %d -> %d bytes, want +2", len(before), len(after))
	}
	// And the grown packet re-parses with the probe present.
	reparsed, _, err := ParseBytes(irp, after)
	if err != nil {
		t.Fatal(err)
	}
	if !reparsed.Valid["probe"] || reparsed.Fields["probe.hop_count"] != 1 {
		t.Errorf("reparsed = %s", reparsed.Summary())
	}
}
