// Package dataplane is a packet-level simulator standing in for the
// paper's hardware testbed. It executes Lyra programs twice — once under
// the reference one-big-pipeline semantics on the source IR, and once as
// the compiled, placed, distributed per-switch programs — so tests can
// assert that compilation preserved behavior end-to-end (the property the
// paper demonstrates by running generated code on real ASICs).
package dataplane

import (
	"fmt"
	"sort"
	"strings"

	"lyra/internal/ir"
)

// Packet is a simulated packet: header fields plus processing disposition.
type Packet struct {
	// Fields maps "hdr.field" to its value.
	Fields map[string]uint64
	// Valid marks header instances present on the packet.
	Valid map[string]bool

	Dropped    bool
	EgressPort uint64
	Mirrored   bool
	ToCPU      bool
	// Bridge carries cross-switch variables (the lyra_bridge header).
	Bridge map[string]uint64
}

// NewPacket creates an empty packet.
func NewPacket() *Packet {
	return &Packet{
		Fields: map[string]uint64{},
		Valid:  map[string]bool{},
		Bridge: map[string]uint64{},
	}
}

// Clone deep-copies the packet.
func (p *Packet) Clone() *Packet {
	q := NewPacket()
	for k, v := range p.Fields {
		q.Fields[k] = v
	}
	for k, v := range p.Valid {
		q.Valid[k] = v
	}
	for k, v := range p.Bridge {
		q.Bridge[k] = v
	}
	q.Dropped, q.EgressPort, q.Mirrored, q.ToCPU = p.Dropped, p.EgressPort, p.Mirrored, p.ToCPU
	return q
}

// Summary renders the observable packet state deterministically (for
// equivalence comparison; the bridge header is compiler-internal and
// excluded).
func (p *Packet) Summary() string {
	var b strings.Builder
	var keys []string
	for k := range p.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d ", k, p.Fields[k])
	}
	var vkeys []string
	for k, v := range p.Valid {
		if v {
			vkeys = append(vkeys, k)
		}
	}
	sort.Strings(vkeys)
	fmt.Fprintf(&b, "valid=[%s] ", strings.Join(vkeys, ","))
	fmt.Fprintf(&b, "drop=%v egress=%d mirror=%v cpu=%v", p.Dropped, p.EgressPort, p.Mirrored, p.ToCPU)
	return b.String()
}

// ExternState is the control-plane content of one extern variable. Keys
// are the (single) key field value; values the (first) value field.
type ExternState struct {
	Entries map[uint64]uint64
}

// Tables is the control-plane state: extern table contents and default
// values, shared by the reference and distributed executions.
type Tables struct {
	Externs map[string]*ExternState
}

// NewTables creates empty control-plane state.
func NewTables() *Tables {
	return &Tables{Externs: map[string]*ExternState{}}
}

// Set installs an entry.
func (t *Tables) Set(extern string, key, value uint64) {
	es := t.Externs[extern]
	if es == nil {
		es = &ExternState{Entries: map[uint64]uint64{}}
		t.Externs[extern] = es
	}
	es.Entries[key] = value
}

// Lookup returns (value, hit).
func (t *Tables) Lookup(extern string, key uint64) (uint64, bool) {
	if es := t.Externs[extern]; es != nil {
		v, ok := es.Entries[key]
		return v, ok
	}
	return 0, false
}

// Context supplies switch-environment values for library calls. A constant
// context makes reference and distributed runs comparable.
type Context struct {
	SwitchID    uint64
	IngressTS   uint64
	EgressTS    uint64
	QueueLen    uint64
	QueueTime   uint64
	IngressPort uint64
}

// LibValue returns the value of a library call in this context.
func (c *Context) LibValue(name string) uint64 {
	switch name {
	case "get_switch_id":
		return c.SwitchID
	case "get_ingress_timestamp":
		return c.IngressTS
	case "get_egress_timestamp":
		return c.EgressTS
	case "get_queue_len":
		return c.QueueLen
	case "get_queue_time":
		return c.QueueTime
	case "get_ingress_port":
		return c.IngressPort
	}
	return 0
}

// mask truncates v to the given bit width (0 or >=64 leaves it unchanged).
func mask(v uint64, bits int) uint64 {
	if bits <= 0 || bits >= 64 {
		return v
	}
	return v & (1<<uint(bits) - 1)
}

// hashOf is the deterministic stand-in for the chip hash units; both
// executors share it so results agree (FNV-1a over the operand values).
func hashOf(kind string, args []uint64, outBits int) uint64 {
	var h uint64 = 14695981039346656037
	for _, a := range args {
		for i := 0; i < 8; i++ {
			h ^= (a >> uint(8*i)) & 0xff
			h *= 1099511628211
		}
	}
	if kind == "crc16_hash" {
		h = (h >> 16) ^ (h & 0xffff)
	}
	return mask(h, outBits)
}

// globalStore holds global (register) arrays, keyed by name.
type globalStore map[string][]uint64

func (g globalStore) ensure(name string, length int) []uint64 {
	arr, ok := g[name]
	if !ok {
		arr = make([]uint64, length)
		g[name] = arr
	}
	return arr
}

// read returns g[name][idx] with out-of-range reads yielding zero. Indices
// are compared as uint64 so huge values cannot wrap into negative ints.
func (g globalStore) read(name string, length int, idx uint64) uint64 {
	arr := g.ensure(name, length)
	if idx >= uint64(len(arr)) {
		return 0
	}
	return arr[idx]
}

func (g globalStore) write(name string, length int, idx, val uint64) {
	arr := g.ensure(name, length)
	if idx < uint64(len(arr)) {
		arr[idx] = val
	}
}

// operandValue resolves an operand against an environment and packet.
func operandValue(o ir.Operand, env map[*ir.Var]uint64, pkt *Packet) uint64 {
	switch o.Kind {
	case ir.OpdConst:
		return o.Const
	case ir.OpdVar:
		return env[o.Var]
	case ir.OpdField:
		return pkt.Fields[o.Hdr+"."+o.Field]
	}
	return 0
}

// guardHolds evaluates an instruction guard.
func guardHolds(g ir.Guard, env map[*ir.Var]uint64) bool {
	for _, t := range g {
		v := env[t.Var] != 0
		if t.Neg == v {
			return false
		}
	}
	return true
}
