package dataplane

import (
	"testing"
	"testing/quick"

	"lyra/internal/lang/ast"
)

// TestMaskProperties: masking is idempotent, bounded, and monotone in width.
func TestMaskProperties(t *testing.T) {
	f := func(v uint64, w uint8) bool {
		bits := int(w % 70)
		m := mask(v, bits)
		if mask(m, bits) != m {
			return false
		}
		if bits > 0 && bits < 64 && m >= 1<<uint(bits) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestEvalBinProperties: algebraic identities of the shared evaluator.
func TestEvalBinProperties(t *testing.T) {
	comm := func(a, b uint64) bool {
		for _, op := range []ast.Op{ast.OpAdd, ast.OpMul, ast.OpAnd, ast.OpOr, ast.OpXor} {
			if evalBin(op, a, b) != evalBin(op, b, a) {
				return false
			}
		}
		return evalBin(ast.OpEq, a, b) == evalBin(ast.OpEq, b, a)
	}
	if err := quick.Check(comm, nil); err != nil {
		t.Error(err)
	}
	inverse := func(a, b uint64) bool {
		return evalBin(ast.OpSub, evalBin(ast.OpAdd, a, b), b) == a &&
			evalBin(ast.OpXor, evalBin(ast.OpXor, a, b), b) == a
	}
	if err := quick.Check(inverse, nil); err != nil {
		t.Error(err)
	}
	ordering := func(a, b uint64) bool {
		lt := evalBin(ast.OpLt, a, b)
		ge := evalBin(ast.OpGe, a, b)
		if lt == ge {
			return false // exactly one must hold
		}
		return evalBin(ast.OpLe, a, b) == evalBin(ast.OpLOr,
			evalBin(ast.OpLt, a, b), evalBin(ast.OpEq, a, b))
	}
	if err := quick.Check(ordering, nil); err != nil {
		t.Error(err)
	}
	divZero := func(a uint64) bool {
		return evalBin(ast.OpDiv, a, 0) == 0 && evalBin(ast.OpMod, a, 0) == 0
	}
	if err := quick.Check(divZero, nil); err != nil {
		t.Error(err)
	}
}

// TestHashDeterminism: the simulated hash is a function of its inputs and
// respects the output width.
func TestHashDeterminism(t *testing.T) {
	f := func(a, b uint64, w uint8) bool {
		bits := int(w%48) + 1
		h1 := hashOf("crc32_hash", []uint64{a, b}, bits)
		h2 := hashOf("crc32_hash", []uint64{a, b}, bits)
		if h1 != h2 {
			return false
		}
		return bits >= 64 || h1 < 1<<uint(bits)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Argument order matters (it is not a commutative fold).
	if hashOf("crc32_hash", []uint64{1, 2}, 32) == hashOf("crc32_hash", []uint64{2, 1}, 32) {
		t.Error("hash should distinguish argument order")
	}
}

// TestPacketCloneIsolation: mutations of a clone never leak back.
func TestPacketCloneIsolation(t *testing.T) {
	f := func(a, b uint64, drop bool) bool {
		p := NewPacket()
		p.Fields["h.x"] = a
		p.Valid["h"] = true
		p.Dropped = drop
		q := p.Clone()
		q.Fields["h.x"] = b
		q.Valid["h"] = false
		q.Dropped = !drop
		q.Bridge["z"] = 9
		return p.Fields["h.x"] == a && p.Valid["h"] && p.Dropped == drop && len(p.Bridge) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSummaryDeterministic: equal packets have equal summaries; differing
// fields differ.
func TestSummaryDeterministic(t *testing.T) {
	f := func(a, b uint64) bool {
		p := NewPacket()
		p.Fields["h.x"] = a
		q := p.Clone()
		if p.Summary() != q.Summary() {
			return false
		}
		q.Fields["h.x"] = b
		return (a == b) == (p.Summary() == q.Summary())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestTablesLookupConsistency: Set/Lookup round-trips.
func TestTablesLookupConsistency(t *testing.T) {
	f := func(k, v uint64) bool {
		tb := NewTables()
		if _, hit := tb.Lookup("t", k); hit {
			return false
		}
		tb.Set("t", k, v)
		got, hit := tb.Lookup("t", k)
		return hit && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestGlobalStoreBounds: out-of-range access is safe and returns zero.
func TestGlobalStoreBounds(t *testing.T) {
	f := func(idx uint64, v uint64) bool {
		g := globalStore{}
		g.write("r", 8, idx, v)
		got := g.read("r", 8, idx)
		if idx < 8 {
			return got == v
		}
		return got == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
