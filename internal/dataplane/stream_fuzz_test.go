package dataplane

import (
	"math/rand"
	"testing"
)

// FuzzStreamEquivalence drives the streaming replay path with fuzzer-
// chosen traffic shapes — flow mix, chunk sizes, lane count, batch depth,
// flush points — and asserts the invariant the whole subsystem rests on:
// replaying a chunked flow-ordered trace through OpenStream is
// byte-identical, packet by packet, to a one-shot single-worker RunBatch
// over the concatenated trace, on both the engine and compiled tiers.
func FuzzStreamEquivalence(f *testing.F) {
	plan, _ := compile(f, streamSrc, streamScope)
	paths := plan.Input.Scopes["track"].Paths

	f.Add(int64(1), uint8(1), uint8(1), uint16(24))
	f.Add(int64(7), uint8(3), uint8(4), uint16(120))
	f.Add(int64(42), uint8(6), uint8(32), uint16(300))
	f.Add(int64(1234), uint8(2), uint8(7), uint16(65))

	f.Fuzz(func(t *testing.T, seed int64, lanes, batch uint8, nPkts uint16) {
		nLanes := 1 + int(lanes)%6
		nBatch := 1 + int(batch)%32
		n := 1 + int(nPkts)%400
		rng := rand.New(rand.NewSource(seed))
		recs := streamTrace(rng, 1+rng.Intn(16), n)
		ctx := &Context{SwitchID: 2, IngressTS: 77}
		path := paths[rng.Intn(len(paths))]

		refDep, err := NewDeployment(plan, NewTables())
		if err != nil {
			t.Fatal(err)
		}
		refEng, err := refDep.Engine()
		if err != nil {
			t.Fatal(err)
		}
		ref := refEng.FlattenTrace(recs, "")
		refEng.RunBatch(path, ctx, ref, 1)

		for _, tier := range []ExecutorTier{TierEngine, TierCompiled} {
			dep, err := NewDeployment(plan, NewTables())
			if err != nil {
				t.Fatal(err)
			}
			eng, err := dep.Engine()
			if err != nil {
				t.Fatal(err)
			}
			key, err := eng.FlowKeyField("flow.id")
			if err != nil {
				t.Fatal(err)
			}
			s, err := dep.OpenStream(path, StreamOptions{
				Tier: tier, Lanes: nLanes, BatchSize: nBatch, FlowKey: key, Ctx: ctx,
			})
			if err != nil {
				t.Fatal(err)
			}
			got := eng.FlattenTrace(recs, "")
			// Chunked feed with fuzzer-scheduled flushes.
			crng := rand.New(rand.NewSource(seed ^ 0x5ca1ab1e))
			for off := 0; off < len(got); {
				c := 1 + crng.Intn(9)
				if off+c > len(got) {
					c = len(got) - off
				}
				if err := s.Feed(got[off : off+c]...); err != nil {
					t.Fatal(err)
				}
				off += c
				if crng.Intn(3) == 0 {
					s.Flush()
				}
			}
			s.Close()
			for i := range got {
				if diff := DiffPackets(ref[i].Packet(), got[i].Packet(), nil); len(diff) > 0 {
					t.Fatalf("tier %v lanes=%d batch=%d packet %d diverges from one-shot: %v",
						tier, nLanes, nBatch, i, diff)
				}
			}
		}
	})
}
