package dataplane

// The compiled execution backend. Where the bytecode engine interprets a
// flat instruction array through one dispatch switch, the compiled backend
// lowers each unit ONCE into closure-threaded Go: every instruction becomes
// a specialized closure with its operands, masks, and slot indices bound as
// captured constants, and consecutive instructions that run under the same
// guard conjunction and shard gate are grouped into a basic block whose
// guard is evaluated a single time. Executing a packet is then: per block,
// one gate test and one guard walk, followed by straight-line calls into
// pre-specialized bodies — no opcode dispatch, no operand-kind switches,
// and (for the common blocks born from if-conversion) one guard evaluation
// amortized over the whole block instead of per instruction.
//
// The compiled backend shares the Engine's Layout, lowered units, and Lane
// state, so a lane runs interchangeably under either tier and the
// per-switch table-generation invalidation applies to both. The bytecode
// engine and the tree-walking interpreter remain the layered oracles the
// compiled tier is cross-checked against (difftest runs all three
// packet-by-packet).

import (
	"math/bits"
	"runtime"

	"lyra/internal/par"
)

// cop is one compiled operation: a closure over the resolved instruction,
// called with the lane's register file and the per-unit table/global state.
type cop func(regs []uint64, f *FlatPacket, ctx *Context, tabs []tableView, globs [][]uint64)

// cblock is a guard-hoisted basic block: ops run back-to-back once the
// block's gate and guard conjunction pass. guards and ops are kept as
// metadata (introspection, tests); execution goes through run, a single
// closure with the guard conjunction and the op chain fused in.
type cblock struct {
	guards []guardRef
	gate   int32
	ops    []cop
	run    cop
}

// cstep is the execution-time view of a block: just the fused closure and
// its shard gate, packed for cache-friendly iteration.
type cstep struct {
	run  cop
	gate int32
}

// ccode is one compiled unit: the blocks plus the lowered unit it came
// from (register count, bridge moves, gate slots). steps mirrors blocks in
// compact form; clearRegs lists the registers that must be zeroed between
// packets (the rest are provably written before any read).
type ccode struct {
	u         *compiledUnit
	blocks    []cblock
	steps     []cstep
	clearRegs []int32
}

// Compiled is the closure-threaded backend of one deployment, built from
// its engine's lowered (and fused) units. Like the Engine it is immutable
// code; all mutable state lives in Lanes. Single-caller, like the Engine.
type Compiled struct {
	eng         *Engine
	units       []*ccode // indexed by stateIdx; units[0] is ref
	switchUnits map[string]*ccode
	lanes       []*Lane

	// One-entry resolved-path cache: a path slice is mapped to the units
	// actually placed on it once, so the steady state pays no per-packet
	// (or even per-hop) string-map lookups. Keyed by the slice's backing
	// array, which callers reuse across packets. Mutated only from the
	// single-caller API surface (RunBatch resolves before its workers
	// fan out, so workers never touch it).
	pathKey   *string
	pathLen   int
	pathUnits []*ccode
}

// CompileEngine translates an engine's lowered units into the
// closure-threaded compiled backend.
func CompileEngine(e *Engine) *Compiled {
	c := &Compiled{eng: e, switchUnits: map[string]*ccode{}}
	for _, u := range e.units {
		cu := compileUnit(u)
		c.units = append(c.units, cu)
		if u.name != "" {
			c.switchUnits[u.name] = cu
		}
	}
	return c
}

// Engine returns the engine whose layout, units, and lanes this backend
// shares.
func (c *Compiled) Engine() *Engine { return c.eng }

// NewLane allocates execution state usable by both tiers.
func (c *Compiled) NewLane() *Lane { return c.eng.NewLane() }

// Flatten converts a map-based packet into a fresh engine packet.
func (c *Compiled) Flatten(p *Packet) *FlatPacket { return c.eng.Flatten(p) }

// NewFlatPacket returns an empty packet sized for this backend's layout.
func (c *Compiled) NewFlatPacket() *FlatPacket { return c.eng.NewFlatPacket() }

// compileUnit groups a unit's instructions into guard-hoisted blocks and
// specializes each instruction into a closure. A block closes early when an
// instruction writes a register its own guard tests: the next instruction
// then opens a fresh block with the same conjunction, which re-evaluates it
// against the updated register — exactly the per-instruction re-check the
// interpreting tiers perform.
func compileUnit(u *compiledUnit) *ccode {
	c := &ccode{u: u}
	var cur *cblock
	var curRep *binstr // representative instruction of the open block
	for i := range u.code {
		in := &u.code[i]
		if cur == nil || !sameGuardsAndGate(u, curRep, in) {
			c.blocks = append(c.blocks, cblock{
				guards: u.guards[in.guardOff:in.guardEnd],
				gate:   in.gate,
			})
			cur = &c.blocks[len(c.blocks)-1]
			curRep = in
		}
		cur.ops = append(cur.ops, compileOp(in, u))
		if blockGuardClobbered(cur, in) {
			cur = nil
		}
	}
	for i := range c.blocks {
		c.blocks[i].run = fuseBlock(&c.blocks[i])
		c.steps = append(c.steps, cstep{run: c.blocks[i].run, gate: c.blocks[i].gate})
	}
	c.clearRegs = clearSet(u)
	return c
}

// clearSet computes which registers can be observed stale between packets:
// a register needs zeroing unless its first use in the unit's linear order
// is an UNCONDITIONAL write (no guards, no gate — a skipped block's write
// never happens). Bridge imports count as writes; gate snapshots, guard
// tests, and bridge exports count as reads. Unused operand slots have the
// zero opRef kind (oConst) and read nothing.
func clearSet(u *compiledUnit) []int32 {
	written := make([]bool, u.numRegs)
	need := make([]bool, u.numRegs)
	readReg := func(r int32) {
		if !written[r] {
			need[r] = true
		}
	}
	read := func(r opRef) {
		if r.kind == oReg {
			readReg(r.idx)
		}
	}
	for _, m := range u.imports {
		written[m.reg] = true
	}
	for _, rs := range u.gates {
		readReg(rs)
	}
	for i := range u.code {
		in := &u.code[i]
		for _, g := range u.guards[in.guardOff:in.guardEnd] {
			readReg(g.reg)
		}
		read(in.a)
		read(in.b)
		read(in.c)
		for _, a := range u.args[in.argsOff:in.argsEnd] {
			read(a)
		}
		if in.guardOff == in.guardEnd && in.gate < 0 {
			if in.destKind == dReg {
				written[in.dest] = true
			}
			if in.dest2Kind == dReg {
				written[in.dest2] = true
			}
		}
	}
	for _, m := range u.exports {
		readReg(m.reg)
	}
	var out []int32
	for r, n := range need {
		if n {
			out = append(out, int32(r))
		}
	}
	return out
}

// fuseBlock collapses a block's guard conjunction and op chain into one
// closure: the common shapes (no guards, a single guard, one to three ops)
// become straight-line code with no slice iteration at run time.
func fuseBlock(b *cblock) cop {
	var body cop
	switch len(b.ops) {
	case 1:
		body = b.ops[0]
	case 2:
		o0, o1 := b.ops[0], b.ops[1]
		body = func(regs []uint64, f *FlatPacket, ctx *Context, tabs []tableView, globs [][]uint64) {
			o0(regs, f, ctx, tabs, globs)
			o1(regs, f, ctx, tabs, globs)
		}
	case 3:
		o0, o1, o2 := b.ops[0], b.ops[1], b.ops[2]
		body = func(regs []uint64, f *FlatPacket, ctx *Context, tabs []tableView, globs [][]uint64) {
			o0(regs, f, ctx, tabs, globs)
			o1(regs, f, ctx, tabs, globs)
			o2(regs, f, ctx, tabs, globs)
		}
	default:
		ops := b.ops
		body = func(regs []uint64, f *FlatPacket, ctx *Context, tabs []tableView, globs [][]uint64) {
			for _, op := range ops {
				op(regs, f, ctx, tabs, globs)
			}
		}
	}
	switch len(b.guards) {
	case 0:
		return body
	case 1:
		g := b.guards[0]
		r := g.reg
		if g.neg {
			return func(regs []uint64, f *FlatPacket, ctx *Context, tabs []tableView, globs [][]uint64) {
				if regs[r] == 0 {
					body(regs, f, ctx, tabs, globs)
				}
			}
		}
		return func(regs []uint64, f *FlatPacket, ctx *Context, tabs []tableView, globs [][]uint64) {
			if regs[r] != 0 {
				body(regs, f, ctx, tabs, globs)
			}
		}
	default:
		gs := b.guards
		return func(regs []uint64, f *FlatPacket, ctx *Context, tabs []tableView, globs [][]uint64) {
			for _, g := range gs {
				if (regs[g.reg] != 0) == g.neg {
					return
				}
			}
			body(regs, f, ctx, tabs, globs)
		}
	}
}

// blockGuardClobbered reports whether the instruction writes a register the
// open block's guard conjunction tests.
func blockGuardClobbered(b *cblock, in *binstr) bool {
	for _, g := range b.guards {
		if in.destKind == dReg && in.dest == g.reg {
			return true
		}
		if in.dest2Kind == dReg && in.dest2 == g.reg {
			return true
		}
	}
	return false
}

// mkLoad specializes one operand fetch.
func mkLoad(r opRef) func(regs []uint64, f *FlatPacket) uint64 {
	switch r.kind {
	case oConst:
		c := r.c
		return func([]uint64, *FlatPacket) uint64 { return c }
	case oReg:
		i := r.idx
		return func(regs []uint64, _ *FlatPacket) uint64 { return regs[i] }
	default:
		i := r.idx
		return func(_ []uint64, f *FlatPacket) uint64 { return f.Fields[i] }
	}
}

// mkStore specializes one destination store (destination kind and width
// mask bound at compile time).
func mkStore(kind uint8, dest int32, m uint64) func(regs []uint64, f *FlatPacket, v uint64) {
	switch kind {
	case dReg:
		return func(regs []uint64, _ *FlatPacket, v uint64) { regs[dest] = v & m }
	case dField:
		return func(_ []uint64, f *FlatPacket, v uint64) {
			f.Fields[dest] = v & m
			f.fieldSet[dest] = true
		}
	default:
		return func([]uint64, *FlatPacket, uint64) {}
	}
}

// compileOp specializes one lowered instruction into a closure. The hot
// shapes (register/constant/field assigns, reg⊗reg and reg⊗const binary
// ops into a register) get fully inlined bodies; everything else composes
// the mkLoad/mkStore specializations.
func compileOp(in *binstr, u *compiledUnit) cop {
	switch in.op {
	case bAssign:
		if in.destKind == dReg {
			d, m := in.dest, in.destMask
			switch in.a.kind {
			case oConst:
				v := in.a.c & m
				return func(regs []uint64, _ *FlatPacket, _ *Context, _ []tableView, _ [][]uint64) {
					regs[d] = v
				}
			case oReg:
				s := in.a.idx
				return func(regs []uint64, _ *FlatPacket, _ *Context, _ []tableView, _ [][]uint64) {
					regs[d] = regs[s] & m
				}
			default:
				s := in.a.idx
				return func(regs []uint64, f *FlatPacket, _ *Context, _ []tableView, _ [][]uint64) {
					regs[d] = f.Fields[s] & m
				}
			}
		}
		if in.destKind == dField {
			d, m := in.dest, in.destMask
			switch in.a.kind {
			case oConst:
				v := in.a.c & m
				return func(_ []uint64, f *FlatPacket, _ *Context, _ []tableView, _ [][]uint64) {
					f.Fields[d] = v
					f.fieldSet[d] = true
				}
			case oReg:
				s := in.a.idx
				return func(regs []uint64, f *FlatPacket, _ *Context, _ []tableView, _ [][]uint64) {
					f.Fields[d] = regs[s] & m
					f.fieldSet[d] = true
				}
			default:
				s := in.a.idx
				return func(_ []uint64, f *FlatPacket, _ *Context, _ []tableView, _ [][]uint64) {
					f.Fields[d] = f.Fields[s] & m
					f.fieldSet[d] = true
				}
			}
		}
		ld := mkLoad(in.a)
		st := mkStore(in.destKind, in.dest, in.destMask)
		return func(regs []uint64, f *FlatPacket, _ *Context, _ []tableView, _ [][]uint64) {
			st(regs, f, ld(regs, f))
		}
	case bBin:
		op := in.binop
		if in.destKind == dReg && in.a.kind == oReg {
			d, m, ai := in.dest, in.destMask, in.a.idx
			switch in.b.kind {
			case oReg:
				bi := in.b.idx
				return func(regs []uint64, _ *FlatPacket, _ *Context, _ []tableView, _ [][]uint64) {
					regs[d] = evalBin(op, regs[ai], regs[bi]) & m
				}
			case oConst:
				c := in.b.c
				return func(regs []uint64, _ *FlatPacket, _ *Context, _ []tableView, _ [][]uint64) {
					regs[d] = evalBin(op, regs[ai], c) & m
				}
			default:
				fi := in.b.idx
				return func(regs []uint64, f *FlatPacket, _ *Context, _ []tableView, _ [][]uint64) {
					regs[d] = evalBin(op, regs[ai], f.Fields[fi]) & m
				}
			}
		}
		la, lb := mkLoad(in.a), mkLoad(in.b)
		st := mkStore(in.destKind, in.dest, in.destMask)
		return func(regs []uint64, f *FlatPacket, _ *Context, _ []tableView, _ [][]uint64) {
			st(regs, f, evalBin(op, la(regs, f), lb(regs, f)))
		}
	case bNot:
		ld := mkLoad(in.a)
		st := mkStore(in.destKind, in.dest, in.destMask)
		return func(regs []uint64, f *FlatPacket, _ *Context, _ []tableView, _ [][]uint64) {
			v := uint64(0)
			if ld(regs, f) == 0 {
				v = 1
			}
			st(regs, f, v)
		}
	case bSelect:
		lc, lt, lf := mkLoad(in.a), mkLoad(in.b), mkLoad(in.c)
		st := mkStore(in.destKind, in.dest, in.destMask)
		return func(regs []uint64, f *FlatPacket, _ *Context, _ []tableView, _ [][]uint64) {
			if lc(regs, f) != 0 {
				st(regs, f, lt(regs, f))
			} else {
				st(regs, f, lf(regs, f))
			}
		}
	case bHash:
		hash := mkHash(u.args[in.argsOff:in.argsEnd], in.crc16)
		am := in.auxMask
		st := mkStore(in.destKind, in.dest, in.destMask)
		return func(regs []uint64, f *FlatPacket, _ *Context, _ []tableView, _ [][]uint64) {
			st(regs, f, hash(regs, f)&am)
		}
	case bLib:
		st := mkStore(in.destKind, in.dest, in.destMask)
		switch in.table {
		case libSwitchID:
			return func(regs []uint64, f *FlatPacket, ctx *Context, _ []tableView, _ [][]uint64) {
				st(regs, f, ctx.SwitchID)
			}
		case libIngressTS:
			return func(regs []uint64, f *FlatPacket, ctx *Context, _ []tableView, _ [][]uint64) {
				st(regs, f, ctx.IngressTS)
			}
		case libEgressTS:
			return func(regs []uint64, f *FlatPacket, ctx *Context, _ []tableView, _ [][]uint64) {
				st(regs, f, ctx.EgressTS)
			}
		case libQueueLen:
			return func(regs []uint64, f *FlatPacket, ctx *Context, _ []tableView, _ [][]uint64) {
				st(regs, f, ctx.QueueLen)
			}
		case libQueueTime:
			return func(regs []uint64, f *FlatPacket, ctx *Context, _ []tableView, _ [][]uint64) {
				st(regs, f, ctx.QueueTime)
			}
		case libIngressPort:
			return func(regs []uint64, f *FlatPacket, ctx *Context, _ []tableView, _ [][]uint64) {
				st(regs, f, ctx.IngressPort)
			}
		default:
			return func(regs []uint64, f *FlatPacket, _ *Context, _ []tableView, _ [][]uint64) {
				st(regs, f, 0)
			}
		}
	case bHeaderAdd:
		s := in.table
		return func(_ []uint64, f *FlatPacket, _ *Context, _ []tableView, _ [][]uint64) {
			f.Valid[s] = true
			f.validSet[s] = true
		}
	case bHeaderRemove:
		s := in.table
		return func(_ []uint64, f *FlatPacket, _ *Context, _ []tableView, _ [][]uint64) {
			f.Valid[s] = false
			f.validSet[s] = true
		}
	case bDrop:
		return func(_ []uint64, f *FlatPacket, _ *Context, _ []tableView, _ [][]uint64) {
			f.Dropped = true
		}
	case bForward:
		ld := mkLoad(in.a)
		return func(regs []uint64, f *FlatPacket, _ *Context, _ []tableView, _ [][]uint64) {
			f.EgressPort = ld(regs, f)
		}
	case bMirror:
		return func(_ []uint64, f *FlatPacket, _ *Context, _ []tableView, _ [][]uint64) {
			f.Mirrored = true
		}
	case bToCPU:
		return func(_ []uint64, f *FlatPacket, _ *Context, _ []tableView, _ [][]uint64) {
			f.ToCPU = true
		}
	case bMember:
		t := in.table
		ld := mkLoad(in.a)
		st := mkStore(in.destKind, in.dest, in.destMask)
		return func(regs []uint64, f *FlatPacket, _ *Context, tabs []tableView, _ [][]uint64) {
			v := uint64(0)
			if tabs[t].flatHas(ld(regs, f)) {
				v = 1
			}
			st(regs, f, v)
		}
	case bLookup:
		t := in.table
		if in.destKind == dReg && in.a.kind == oReg {
			d, m, ki := in.dest, in.destMask, in.a.idx
			return func(regs []uint64, _ *FlatPacket, _ *Context, tabs []tableView, _ [][]uint64) {
				regs[d] = tabs[t].flatGet(regs[ki]) & m
			}
		}
		ld := mkLoad(in.a)
		st := mkStore(in.destKind, in.dest, in.destMask)
		return func(regs []uint64, f *FlatPacket, _ *Context, tabs []tableView, _ [][]uint64) {
			st(regs, f, tabs[t].flatGet(ld(regs, f)))
		}
	case bGlobalRead:
		t := in.table
		ld := mkLoad(in.a)
		st := mkStore(in.destKind, in.dest, in.destMask)
		return func(regs []uint64, f *FlatPacket, _ *Context, _ []tableView, globs [][]uint64) {
			arr := globs[t]
			idx := ld(regs, f)
			var v uint64
			if idx < uint64(len(arr)) {
				v = arr[idx]
			}
			st(regs, f, v)
		}
	case bGlobalWrite:
		t, m := in.table, in.auxMask
		li, lv := mkLoad(in.a), mkLoad(in.b)
		return func(regs []uint64, f *FlatPacket, _ *Context, _ []tableView, globs [][]uint64) {
			arr := globs[t]
			idx := li(regs, f)
			if idx < uint64(len(arr)) {
				arr[idx] = lv(regs, f) & m
			}
		}
	case bInsert:
		t := in.table
		lk, lv := mkLoad(in.a), mkLoad(in.b)
		return func(regs []uint64, f *FlatPacket, _ *Context, tabs []tableView, _ [][]uint64) {
			tabs[t].insert(lk(regs, f), lv(regs, f))
		}
	case bHashLookup, bHashMember:
		hash := mkHash(u.args[in.argsOff:in.argsEnd], in.crc16)
		am, t := in.auxMask, in.table
		hd, hm := in.dest, in.destMask // fused hash dest is always a register
		st2 := mkStore(in.dest2Kind, in.dest2, in.dest2Mask)
		if in.op == bHashMember {
			return func(regs []uint64, f *FlatPacket, _ *Context, tabs []tableView, _ [][]uint64) {
				regs[hd] = (hash(regs, f) & am) & hm
				v := uint64(0)
				if tabs[t].flatHas(regs[hd]) {
					v = 1
				}
				st2(regs, f, v)
			}
		}
		return func(regs []uint64, f *FlatPacket, _ *Context, tabs []tableView, _ [][]uint64) {
			regs[hd] = (hash(regs, f) & am) & hm
			st2(regs, f, tabs[t].flatGet(regs[hd]))
		}
	case bBinSelect:
		op := in.binop
		la, lb := mkLoad(in.a), mkLoad(in.b)
		lt, lf := mkLoad(u.args[in.argsOff]), mkLoad(u.args[in.argsOff+1])
		cd, cm := in.dest, in.destMask // fused compare dest is always a register
		st2 := mkStore(in.dest2Kind, in.dest2, in.dest2Mask)
		return func(regs []uint64, f *FlatPacket, _ *Context, _ []tableView, _ [][]uint64) {
			regs[cd] = evalBin(op, la(regs, f), lb(regs, f)) & cm
			if regs[cd] != 0 {
				st2(regs, f, lt(regs, f))
			} else {
				st2(regs, f, lf(regs, f))
			}
		}
	}
	// Unreachable for well-formed lowered code; a no-op keeps the backend
	// total.
	return func([]uint64, *FlatPacket, *Context, []tableView, [][]uint64) {}
}

// The compiled tier reads extern tables through a lane-local open-
// addressing mirror of the entry map: contiguous key/value arrays with
// linear probing, so the hot member/lookup ops cost a multiply-mix and a
// probe or two instead of a full Go map access. The mirror is built
// lazily on first read (engine-only lanes never pay for it) and kept in
// sync by tableView.insert; rebinding a unit's views after a control-
// plane mutation discards it wholesale.

// flatEmptyKey marks an unused slot. The one key colliding with it is
// served from the entry map instead of the mirror.
const flatEmptyKey = ^uint64(0)

func flatIdx(k, mask uint64) uint64 {
	h := k * 0x9E3779B97F4A7C15
	return (h ^ h>>29) & mask
}

func (tv *tableView) buildFlat() {
	slots := 8
	for slots < 2*(len(tv.entries)+1) {
		slots *= 2
	}
	// Interleaved key/value pairs: a probe's key test and value load share
	// one cache line.
	tv.flatKV = make([]uint64, 2*slots)
	for i := 0; i < len(tv.flatKV); i += 2 {
		tv.flatKV[i] = flatEmptyKey
	}
	tv.nflat = 0
	tv.built = true
	for k, v := range tv.entries {
		tv.flatPut(k, v)
	}
}

func (tv *tableView) flatPut(k, v uint64) {
	if k == flatEmptyKey {
		return // map-only key
	}
	if 4*(tv.nflat+1) > len(tv.flatKV) { // keep load factor <= 1/2
		tv.buildFlat()
		return // rebuild re-inserts every entry, including k
	}
	mask := uint64(len(tv.flatKV)/2 - 1)
	i := flatIdx(k, mask)
	for {
		switch tv.flatKV[2*i] {
		case k:
			tv.flatKV[2*i+1] = v
			return
		case flatEmptyKey:
			tv.flatKV[2*i], tv.flatKV[2*i+1] = k, v
			tv.nflat++
			return
		}
		i = (i + 1) & mask
	}
}

func (tv *tableView) flatGet(k uint64) uint64 {
	if !tv.built {
		tv.buildFlat()
	}
	if k == flatEmptyKey {
		return tv.entries[k]
	}
	kv := tv.flatKV
	mask := uint64(len(kv)/2 - 1)
	i := flatIdx(k, mask)
	for {
		switch kv[2*i] {
		case k:
			return kv[2*i+1]
		case flatEmptyKey:
			return 0
		}
		i = (i + 1) & mask
	}
}

func (tv *tableView) flatHas(k uint64) bool {
	if !tv.built {
		tv.buildFlat()
	}
	if k == flatEmptyKey {
		_, ok := tv.entries[k]
		return ok
	}
	kv := tv.flatKV
	mask := uint64(len(kv)/2 - 1)
	i := flatIdx(k, mask)
	for {
		switch kv[2*i] {
		case k:
			return true
		case flatEmptyKey:
			return false
		}
		i = (i + 1) & mask
	}
}

// fnvPow[k] is the FNV-1a prime raised to the k-th power (mod 2^64).
// Mixing a zero byte is h = (h^0)*p = h*p, so a run of k high zero bytes
// collapses to a single multiply by p^k — bit-identical to the engine's
// byte-at-a-time loop, at a fraction of the multiplies for the narrow
// field values that dominate real traffic.
var fnvPow = func() (t [9]uint64) {
	t[0] = 1
	for i := 1; i < 9; i++ {
		t[i] = t[i-1] * 1099511628211
	}
	return
}()

// mixFNV folds one 64-bit operand into the running FNV-1a state, mixing
// only the bytes up to the highest non-zero one and collapsing the zero
// tail through fnvPow. Exactly equal to eight explicit byte steps.
func mixFNV(h, v uint64) uint64 {
	n := (71 - bits.LeadingZeros64(v|1)) >> 3
	for i := 0; i < n; i++ {
		h ^= v & 0xff
		v >>= 8
		h *= 1099511628211
	}
	return h * fnvPow[8-n]
}

// mkHash specializes one hash instruction's operand list into a closure
// chain: per-operand loads are pre-resolved (no operand-kind dispatch) and
// each mix uses the collapsed byte walk.
func mkHash(args []opRef, crc16 bool) func(regs []uint64, f *FlatPacket) uint64 {
	var fn func(regs []uint64, f *FlatPacket) uint64
	allFields := true
	for _, a := range args {
		if a.kind != oField {
			allFields = false
			break
		}
	}
	if allFields {
		// The dominant shape — hashing a tuple of header fields — gets a
		// single closure over the slot indices, with no per-operand calls.
		idxs := make([]int32, len(args))
		for i, a := range args {
			idxs[i] = a.idx
		}
		fn = func(_ []uint64, f *FlatPacket) uint64 {
			h := uint64(14695981039346656037)
			for _, i := range idxs {
				h = mixFNV(h, f.Fields[i])
			}
			return h
		}
	} else {
		fn = func([]uint64, *FlatPacket) uint64 { return 14695981039346656037 }
		for _, a := range args {
			prev := fn
			ld := mkLoad(a)
			fn = func(regs []uint64, f *FlatPacket) uint64 {
				return mixFNV(prev(regs, f), ld(regs, f))
			}
		}
	}
	if crc16 {
		prev := fn
		fn = func(regs []uint64, f *FlatPacket) uint64 {
			h := prev(regs, f)
			return (h >> 16) ^ (h & 0xffff)
		}
	}
	return fn
}

// hashArgs is the engine's inline FNV-1a over resolved operands, the
// reference the specialized mkHash chains are equivalent to.
func hashArgs(args []opRef, regs []uint64, f *FlatPacket, crc16 bool) uint64 {
	var h uint64 = 14695981039346656037
	for _, a := range args {
		v := opval(a, regs, f)
		for sh := uint(0); sh < 64; sh += 8 {
			h ^= (v >> sh) & 0xff
			h *= 1099511628211
		}
	}
	if crc16 {
		h = (h >> 16) ^ (h & 0xffff)
	}
	return h
}

// runUnit executes one compiled unit on the lane: bridge imports, gate
// snapshot, guard-hoisted blocks, bridge exports — the compiled equivalent
// of Lane.runSwitch.
func (c *Compiled) runUnit(l *Lane, cu *ccode, ctx *Context, f *FlatPacket) {
	u := cu.u
	l.syncTables(u.stateIdx)
	regs := l.regs
	for _, r := range cu.clearRegs {
		regs[r] = 0
	}
	for _, m := range u.imports {
		regs[m.reg] = f.Bridge[m.slot]
	}
	for i, rs := range u.gates {
		l.gateVals[i] = regs[rs]
	}
	tabs := l.tables[u.stateIdx]
	globs := l.globals[u.stateIdx]
	for _, s := range cu.steps {
		if s.gate >= 0 && l.gateVals[s.gate] != 0 {
			continue
		}
		s.run(regs, f, ctx, tabs, globs)
	}
	for _, m := range u.exports {
		f.Bridge[m.slot] = regs[m.reg]
		f.bridgeSet[m.slot] = true
	}
}

// RunReference executes the one-big-pipeline reference semantics through
// the compiled tier.
func (c *Compiled) RunReference(l *Lane, ctx *Context, f *FlatPacket) {
	if ctx == nil {
		ctx = &zeroCtx
	}
	c.runUnit(l, c.units[0], ctx, f)
}

// resolveUnits maps a flow path to the compiled units actually placed on
// it. The result is cached keyed on the path's backing array: callers
// replay many packets down the same path slice, and on a cache hit the
// per-hop switch-name lookups disappear entirely.
func (c *Compiled) resolveUnits(path []string) []*ccode {
	if len(path) == 0 {
		return nil
	}
	if &path[0] == c.pathKey && len(path) == c.pathLen {
		return c.pathUnits
	}
	units := make([]*ccode, 0, len(path))
	for _, sw := range path {
		if cu := c.switchUnits[sw]; cu != nil {
			units = append(units, cu)
		}
	}
	c.pathKey, c.pathLen, c.pathUnits = &path[0], len(path), units
	return units
}

// runResolved pushes one packet through an already-resolved unit list.
func (c *Compiled) runResolved(l *Lane, units []*ccode, ctx *Context, f *FlatPacket) {
	for _, cu := range units {
		c.runUnit(l, cu, ctx, f)
	}
}

// RunPacket pushes one packet along a flow path, mutating it in place.
func (c *Compiled) RunPacket(l *Lane, path []string, ctx *Context, f *FlatPacket) {
	if ctx == nil {
		ctx = &zeroCtx
	}
	c.runResolved(l, c.resolveUnits(path), ctx, f)
}

// RunPacketContexts is RunPacket with a per-switch environment.
func (c *Compiled) RunPacketContexts(l *Lane, path []string, ctxOf func(sw string) *Context, f *FlatPacket) {
	for _, sw := range path {
		cu := c.switchUnits[sw]
		if cu == nil {
			continue
		}
		ctx := ctxOf(sw)
		if ctx == nil {
			ctx = &zeroCtx
		}
		c.runUnit(l, cu, ctx, f)
	}
}

// RunBatch replays a batch of packets along a path, sharded contiguously
// across a bounded worker pool with one lane per worker — the compiled
// counterpart of Engine.RunBatch, with the same determinism contract.
func (c *Compiled) RunBatch(path []string, ctx *Context, pkts []*FlatPacket, workers int) {
	n := len(pkts)
	if n == 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	c.ensureLanes(workers)
	if ctx == nil {
		ctx = &zeroCtx
	}
	// Resolve the path once before fanning out: workers share the unit
	// list read-only and never touch the cache.
	units := c.resolveUnits(path)
	if workers == 1 {
		l := c.lanes[0]
		for _, f := range pkts {
			c.runResolved(l, units, ctx, f)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	par.For(workers, workers, func(w int) {
		lo := w * chunk
		if lo >= n {
			return
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		l := c.lanes[w]
		for _, f := range pkts[lo:hi] {
			c.runResolved(l, units, ctx, f)
		}
	})
}

func (c *Compiled) ensureLanes(n int) {
	for len(c.lanes) < n {
		c.lanes = append(c.lanes, c.eng.NewLane())
	}
}
