package dataplane

import (
	"fmt"
	"math/rand"
	"testing"
)

// lbDeployment compiles the load balancer, populates tables, and builds a
// deployment, shared across the engine tests.
func lbDeployment(t testing.TB) (*Deployment, *Tables, [][]string) {
	t.Helper()
	plan, _ := compile(t, lbSrc, lbScope)
	tables := NewTables()
	for vip := uint64(0); vip < 16; vip++ {
		tables.Set("vip_table", vip, 0xC0A80000+vip)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 48; i++ {
		tables.Set("conn_table", uint64(rng.Uint32()), 0x0A000000+uint64(i))
	}
	dep, err := NewDeployment(plan, tables)
	if err != nil {
		t.Fatalf("deployment: %v", err)
	}
	return dep, tables, plan.Input.Scopes["loadbalancer"].Paths
}

// TestEngineMatchesInterpreterLB checks byte-identical output (full map
// reconstruction, not just the summary) between RunPath and RunPathEngine
// on the LB workload across every flow path.
func TestEngineMatchesInterpreterLB(t *testing.T) {
	dep, _, paths := lbDeployment(t)
	rng := rand.New(rand.NewSource(2))
	ctx := &Context{SwitchID: 7, IngressTS: 1000, EgressTS: 1500, QueueLen: 3}
	for i := 0; i < 50; i++ {
		pkt := randomLBPacket(rng)
		for _, path := range paths {
			want, err := dep.RunPath(path, ctx, pkt)
			if err != nil {
				t.Fatalf("interpreter: %v", err)
			}
			got, err := dep.RunPathEngine(path, ctx, pkt)
			if err != nil {
				t.Fatalf("engine: %v", err)
			}
			if got.Summary() != want.Summary() {
				t.Fatalf("packet %d path %v:\n  interp: %s\n  engine: %s",
					i, path, want.Summary(), got.Summary())
			}
			if diffs := DiffPackets(want, got, nil); len(diffs) > 0 {
				t.Fatalf("packet %d path %v diffs: %v", i, path, diffs)
			}
		}
	}
}

// TestEngineReferenceMatchesInterpreter checks the engine's reference unit
// against RunReference.
func TestEngineReferenceMatchesInterpreter(t *testing.T) {
	dep, tables, _ := lbDeployment(t)
	eng, err := dep.Engine()
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	irp := dep.Plan.Input.IR
	rng := rand.New(rand.NewSource(3))
	ctx := &Context{SwitchID: 1}
	for i := 0; i < 50; i++ {
		pkt := randomLBPacket(rng)
		want, err := RunReference(irp, tables, ctx, pkt)
		if err != nil {
			t.Fatalf("reference: %v", err)
		}
		lane := eng.NewLane()
		f := eng.Flatten(pkt)
		eng.RunReference(lane, ctx, f)
		got := f.Packet()
		if got.Summary() != want.Summary() {
			t.Fatalf("packet %d:\n  interp: %s\n  engine: %s", i, want.Summary(), got.Summary())
		}
	}
}

// TestEngineTracedMatchesInterpreter compares per-hop snapshots.
func TestEngineTracedMatchesInterpreter(t *testing.T) {
	plan, _ := compile(t, lbSrc, lbScope)
	tables := NewTables()
	for vip := uint64(0); vip < 16; vip++ {
		tables.Set("vip_table", vip, 0xC0A80000+vip)
	}
	rng := rand.New(rand.NewSource(4))
	ctx := &Context{SwitchID: 9}
	for i := 0; i < 10; i++ {
		pkt := randomLBPacket(rng)
		for _, path := range plan.Input.Scopes["loadbalancer"].Paths {
			depA, err := NewDeployment(plan, tables)
			if err != nil {
				t.Fatal(err)
			}
			depB, err := NewDeployment(plan, tables)
			if err != nil {
				t.Fatal(err)
			}
			want, wantHops, err := depA.RunPathTraced(path, ctx, pkt)
			if err != nil {
				t.Fatalf("interpreter traced: %v", err)
			}
			got, gotHops, err := depB.RunPathEngineTraced(path, ctx, pkt)
			if err != nil {
				t.Fatalf("engine traced: %v", err)
			}
			if got.Summary() != want.Summary() {
				t.Fatalf("final state:\n  interp: %s\n  engine: %s", want.Summary(), got.Summary())
			}
			if len(gotHops) != len(wantHops) {
				t.Fatalf("hop counts differ: %d vs %d", len(wantHops), len(gotHops))
			}
			for h := range wantHops {
				if gotHops[h].Switch != wantHops[h].Switch || gotHops[h].Summary != wantHops[h].Summary {
					t.Fatalf("hop %d diverges:\n  interp: %s %s\n  engine: %s %s", h,
						wantHops[h].Switch, wantHops[h].Summary, gotHops[h].Switch, gotHops[h].Summary)
				}
			}
		}
	}
}

// statefulSrc exercises globals (register arrays), header add/remove,
// hashing, packet ops, and table inserts — every stateful op the engine
// lowers.
const statefulSrc = `
header_type h_t { bit[32] a; bit[32] b; bit[32] out; }
header h_t h;
header_type probe_t { bit[32] stamp; }
header probe_t probe;
pipeline[ST]{statealg};
algorithm statealg {
  extern dict<bit[32] k, bit[32] v>[32] seen_table;
  global bit[32][16] counters;
  bit[32] idx;
  bit[32] c;
  idx = h.a & 15;
  c = counters[idx] + 1;
  counters[idx] = c;
  if (c > 2) {
    add_header(probe);
    probe.stamp = crc16_hash(h.a, c);
    insert(seen_table, h.a, c);
  }
  if (h.a in seen_table) {
    h.out = seen_table[h.a] + counters[idx];
  } else {
    h.out = c;
  }
  if (h.b == 1) { drop(); }
  if (h.b == 2) { forward(h.a & 7); }
}
`

const statefulScope = `statealg: [ ToR3 | PER-SW | - ]`

// TestEngineStatefulSequence runs a packet sequence through one lane and
// through the interpreter on a fresh deployment each, asserting identical
// evolution of register state, inserted entries, and packet outputs.
func TestEngineStatefulSequence(t *testing.T) {
	plan, _ := compile(t, statefulSrc, statefulScope)
	tables := NewTables()
	tables.Set("seen_table", 999, 5)

	depInterp, err := NewDeployment(plan, tables)
	if err != nil {
		t.Fatal(err)
	}
	depEngine, err := NewDeployment(plan, tables)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := depEngine.Engine()
	if err != nil {
		t.Fatal(err)
	}
	lane := eng.NewLane()

	ctx := &Context{SwitchID: 3, QueueLen: 2}
	rng := rand.New(rand.NewSource(11))
	path := []string{"ToR3"}
	for i := 0; i < 64; i++ {
		pkt := NewPacket()
		pkt.Valid["h"] = true
		pkt.Fields["h.a"] = uint64(rng.Intn(8)) // collide often: counters advance
		pkt.Fields["h.b"] = uint64(rng.Intn(4))
		want, err := depInterp.RunPath(path, ctx, pkt)
		if err != nil {
			t.Fatalf("interpreter: %v", err)
		}
		f := eng.Flatten(pkt)
		eng.RunPacket(lane, path, ctx, f)
		got := f.Packet()
		if got.Summary() != want.Summary() {
			t.Fatalf("packet %d diverges:\n  interp: %s\n  engine: %s", i, want.Summary(), got.Summary())
		}
	}
}

// TestEngineInsertIsLaneLocal: a lane's data-plane inserts must not leak
// into the deployment's shared control-plane maps (copy-on-write), so
// parallel lanes never race and the interpreter's view stays pristine.
func TestEngineInsertIsLaneLocal(t *testing.T) {
	plan, _ := compile(t, statefulSrc, statefulScope)
	tables := NewTables()
	dep, err := NewDeployment(plan, tables)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := dep.Engine()
	if err != nil {
		t.Fatal(err)
	}
	lane := eng.NewLane()
	ctx := &Context{}
	for i := 0; i < 4; i++ { // same key four times: crosses the c>2 insert threshold
		pkt := NewPacket()
		pkt.Valid["h"] = true
		pkt.Fields["h.a"] = 5
		f := eng.Flatten(pkt)
		eng.RunPacket(lane, []string{"ToR3"}, ctx, f)
	}
	if st := dep.shardTables["ToR3"]; st != nil {
		if _, hit := st.Lookup("seen_table", 5); hit {
			t.Fatal("engine insert leaked into the deployment's shard tables")
		}
	}
	// And a second, fresh lane must not see the first lane's inserts.
	lane2 := eng.NewLane()
	pkt := NewPacket()
	pkt.Valid["h"] = true
	pkt.Fields["h.a"] = 5
	f := eng.Flatten(pkt)
	eng.RunPacket(lane2, []string{"ToR3"}, ctx, f)
	got := f.Packet()
	if got.Fields["h.out"] != 1 { // fresh counters, no seen_table hit
		t.Fatalf("fresh lane saw another lane's state: h.out=%d, want 1", got.Fields["h.out"])
	}
}

// TestEngineInvalidatedOnTableMutation: SetSwitchEntry must invalidate the
// mutated switch's lowered table state — without dropping the engine. The
// lowered code never depends on table contents, so the engine (and any
// lanes bound to it) survives the mutation; only the affected switch's
// table generation bumps, and lanes rebind that switch's views on their
// next run through it.
func TestEngineInvalidatedOnTableMutation(t *testing.T) {
	dep, _, paths := lbDeployment(t)
	eng, err := dep.Engine()
	if err != nil {
		t.Fatal(err)
	}
	if dep.engine == nil || dep.externKeys == nil {
		t.Fatal("expected caches to be populated")
	}
	tor := paths[0][len(paths[0])-1]
	gen := eng.tableGen[eng.switchUnits[tor].stateIdx]
	// A lane that has already executed the switch holds stale views.
	lane := eng.NewLane()
	warm := NewPacket()
	warm.Valid["ipv4"] = true
	warm.Valid["tcp"] = true
	warm.Fields["ipv4.dstAddr"] = 99
	warm.Fields["ipv4.protocol"] = 6
	eng.RunPacket(lane, paths[0], &Context{SwitchID: 1}, eng.Flatten(warm))

	dep.SetSwitchEntry(tor, "vip_table", 99, 0xdead)
	if dep.engine != eng {
		t.Fatal("SetSwitchEntry dropped the cached engine; expected a generation bump instead")
	}
	if dep.externKeys == nil {
		t.Fatal("SetSwitchEntry dropped extern metadata; it does not depend on table contents")
	}
	if got := eng.tableGen[eng.switchUnits[tor].stateIdx]; got != gen+1 {
		t.Fatalf("mutated switch generation = %d, want %d", got, gen+1)
	}

	pkt := NewPacket()
	pkt.Valid["ipv4"] = true
	pkt.Valid["tcp"] = true
	pkt.Fields["ipv4.dstAddr"] = 99
	pkt.Fields["ipv4.protocol"] = 6
	ctx := &Context{SwitchID: 1}
	want, err := dep.RunPath(paths[0], ctx, pkt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dep.RunPathEngine(paths[0], ctx, pkt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Summary() != want.Summary() {
		t.Fatalf("post-mutation divergence:\n  interp: %s\n  engine: %s", want.Summary(), got.Summary())
	}
	// The pre-existing lane must also observe the new entry (lazy rebind).
	f := eng.Flatten(pkt.Clone())
	eng.RunPacket(lane, paths[0], ctx, f)
	if laneGot := f.Packet(); laneGot.Summary() != want.Summary() {
		t.Fatalf("stale lane after mutation:\n  interp: %s\n  lane:   %s", want.Summary(), laneGot.Summary())
	}
	// The compiled backend shares the engine's generations and must agree.
	cgot, err := dep.RunPathCompiled(paths[0], ctx, pkt)
	if err != nil {
		t.Fatal(err)
	}
	if cgot.Summary() != want.Summary() {
		t.Fatalf("post-mutation divergence:\n  interp:   %s\n  compiled: %s", want.Summary(), cgot.Summary())
	}

	// Mutating one switch must not touch the others' generations.
	other := ""
	for sw, u := range eng.switchUnits {
		if sw != tor && u != nil {
			other = sw
			break
		}
	}
	if other != "" {
		before := eng.tableGen[eng.switchUnits[other].stateIdx]
		dep.SetSwitchEntry(tor, "vip_table", 100, 0xbeef)
		if after := eng.tableGen[eng.switchUnits[other].stateIdx]; after != before {
			t.Fatalf("unrelated switch generation moved: %d -> %d", before, after)
		}
	}
	// Mutating a switch with no placed program must be harmless.
	dep.ClearSwitchTable(paths[0][0], "conn_table")
	if dep.engine != eng {
		t.Fatal("ClearSwitchTable dropped the cached engine; expected a generation bump instead")
	}
}

// TestEngineRunBatchMatchesSequential: batched, sharded replay must produce
// the same per-packet outputs as one-at-a-time engine execution for a
// stateless workload, at every worker count.
func TestEngineRunBatchMatchesSequential(t *testing.T) {
	dep, _, paths := lbDeployment(t)
	eng, err := dep.Engine()
	if err != nil {
		t.Fatal(err)
	}
	ctx := &Context{SwitchID: 2}
	const n = 256
	mk := func() []*FlatPacket {
		r := rand.New(rand.NewSource(5))
		out := make([]*FlatPacket, n)
		for i := range out {
			out[i] = eng.Flatten(randomLBPacket(r))
		}
		return out
	}
	base := mk()
	eng.RunBatch(paths[0], ctx, base, 1)
	for _, workers := range []int{2, 4, 7} {
		got := mk()
		eng.RunBatch(paths[0], ctx, got, workers)
		for i := range got {
			if got[i].Packet().Summary() != base[i].Packet().Summary() {
				t.Fatalf("workers=%d packet %d diverges from sequential", workers, i)
			}
		}
	}
}

// TestEngineSteadyStateZeroAlloc is the acceptance gate: the execute loop
// must not allocate once lanes and packets exist.
func TestEngineSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	dep, _, paths := lbDeployment(t)
	eng, err := dep.Engine()
	if err != nil {
		t.Fatal(err)
	}
	lane := eng.NewLane()
	ctx := &Context{SwitchID: 2, IngressTS: 5}
	rng := rand.New(rand.NewSource(6))
	tmpl := eng.Flatten(randomLBPacket(rng))
	f := eng.NewFlatPacket()
	path := paths[0]
	// Warm up (first runs may grow runtime stacks).
	for i := 0; i < 10; i++ {
		f.CopyFrom(tmpl)
		eng.RunPacket(lane, path, ctx, f)
	}
	allocs := testing.AllocsPerRun(200, func() {
		f.CopyFrom(tmpl)
		eng.RunPacket(lane, path, ctx, f)
	})
	if allocs != 0 {
		t.Fatalf("steady-state execute loop allocates %.1f times per packet, want 0", allocs)
	}
	// Single-worker batches run inline on lane 0 and stay allocation-free
	// too.
	batch := []*FlatPacket{f}
	eng.RunBatch(path, ctx, batch, 1)
	allocs = testing.AllocsPerRun(200, func() {
		f.CopyFrom(tmpl)
		eng.RunBatch(path, ctx, batch, 1)
	})
	if allocs != 0 {
		t.Fatalf("single-worker RunBatch allocates %.1f times per packet, want 0", allocs)
	}
}

// BenchmarkInterpreterPath measures the tree-walking interpreter on the LB
// flow path — the baseline the engine is judged against.
func BenchmarkInterpreterPath(b *testing.B) {
	dep, _, paths := lbDeployment(b)
	rng := rand.New(rand.NewSource(8))
	pkts := make([]*Packet, 1024)
	for i := range pkts {
		pkts[i] = randomLBPacket(rng)
	}
	ctx := &Context{SwitchID: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dep.RunPath(paths[0], ctx, pkts[i%len(pkts)]); err != nil {
			b.Fatal(err)
		}
	}
	reportPPS(b)
}

// BenchmarkEnginePath measures single-packet engine execution.
func BenchmarkEnginePath(b *testing.B) {
	dep, _, paths := lbDeployment(b)
	eng, err := dep.Engine()
	if err != nil {
		b.Fatal(err)
	}
	lane := eng.NewLane()
	rng := rand.New(rand.NewSource(8))
	tmpls := make([]*FlatPacket, 1024)
	for i := range tmpls {
		tmpls[i] = eng.Flatten(randomLBPacket(rng))
	}
	f := eng.NewFlatPacket()
	ctx := &Context{SwitchID: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.CopyFrom(tmpls[i%len(tmpls)])
		eng.RunPacket(lane, paths[0], ctx, f)
	}
	reportPPS(b)
}

// BenchmarkEngineBatch measures sharded batch replay at several batch
// sizes and the machine's parallelism.
func BenchmarkEngineBatch(b *testing.B) {
	for _, bench := range []struct {
		batch   int
		workers int
	}{{64, 1}, {1024, 1}, {1024, 0}} {
		name := fmt.Sprintf("batch=%d/workers=%d", bench.batch, bench.workers)
		b.Run(name, func(b *testing.B) {
			dep, _, paths := lbDeployment(b)
			eng, err := dep.Engine()
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(8))
			tmpls := make([]*FlatPacket, bench.batch)
			work := make([]*FlatPacket, bench.batch)
			for i := range tmpls {
				tmpls[i] = eng.Flatten(randomLBPacket(rng))
				work[i] = eng.NewFlatPacket()
			}
			ctx := &Context{SwitchID: 2}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range work {
					work[j].CopyFrom(tmpls[j])
				}
				eng.RunBatch(paths[0], ctx, work, bench.workers)
			}
			b.StopTimer()
			pkts := float64(b.N) * float64(bench.batch)
			b.ReportMetric(pkts/b.Elapsed().Seconds(), "pkts/s")
		})
	}
}

func reportPPS(b *testing.B) {
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
	}
}
