package dataplane

// The bytecode packet-execution engine. An Engine is the lowered, immutable
// code of one deployment (lower.go); a Lane is the mutable execution state
// — register file, gate snapshots, per-switch global arrays, and
// copy-on-write extern table views — that a single goroutine drives packets
// through. Steady-state execution allocates nothing: operands resolve
// through dense slices, guards are precompiled index ranges, and hashes are
// computed inline. RunBatch shards a packet batch into contiguous chunks
// across a bounded worker pool (internal/par), one lane per worker, so
// replaying traffic scales with cores while each lane's stateful arrays
// stay single-owner.

import (
	"fmt"
	"runtime"
	"sort"

	"lyra/internal/par"
)

// FlatPacket is the engine's dense packet representation: slot-indexed
// field, validity, and bridge arrays (layout-assigned) plus the packet
// disposition flags. The *Set arrays track map-key presence so converting
// back to a Packet reproduces the interpreter's maps exactly — a field
// written to zero is distinguishable from one never written. Keys unknown
// to the layout (a packet carrying headers the program never declared) are
// parked in overflow maps that execution never touches.
type FlatPacket struct {
	lay       *Layout
	Fields    []uint64
	fieldSet  []bool
	Valid     []bool
	validSet  []bool
	Bridge    []uint64
	bridgeSet []bool

	Dropped    bool
	EgressPort uint64
	Mirrored   bool
	ToCPU      bool

	extraFields map[string]uint64
	extraValid  map[string]bool
	extraBridge map[string]uint64
}

func (l *Layout) newFlat() *FlatPacket {
	return &FlatPacket{
		lay:       l,
		Fields:    make([]uint64, len(l.fieldName)),
		fieldSet:  make([]bool, len(l.fieldName)),
		Valid:     make([]bool, len(l.validName)),
		validSet:  make([]bool, len(l.validName)),
		Bridge:    make([]uint64, len(l.bridgeName)),
		bridgeSet: make([]bool, len(l.bridgeName)),
	}
}

// Reset clears the packet to the empty state without releasing storage.
func (f *FlatPacket) Reset() {
	clear(f.Fields)
	clear(f.fieldSet)
	clear(f.Valid)
	clear(f.validSet)
	clear(f.Bridge)
	clear(f.bridgeSet)
	f.Dropped, f.Mirrored, f.ToCPU = false, false, false
	f.EgressPort = 0
	f.extraFields, f.extraValid, f.extraBridge = nil, nil, nil
}

// CopyFrom overwrites f with o's contents. Both must come from the same
// layout. The copy is allocation-free; overflow maps (never mutated by
// execution) are shared, not cloned.
func (f *FlatPacket) CopyFrom(o *FlatPacket) {
	copy(f.Fields, o.Fields)
	copy(f.fieldSet, o.fieldSet)
	copy(f.Valid, o.Valid)
	copy(f.validSet, o.validSet)
	copy(f.Bridge, o.Bridge)
	copy(f.bridgeSet, o.bridgeSet)
	f.Dropped, f.EgressPort, f.Mirrored, f.ToCPU = o.Dropped, o.EgressPort, o.Mirrored, o.ToCPU
	f.extraFields, f.extraValid, f.extraBridge = o.extraFields, o.extraValid, o.extraBridge
}

// SetField writes a "hdr.field" value, reporting whether the layout knows
// the field (unknown fields go to the overflow map, like Packet.Fields).
func (f *FlatPacket) SetField(name string, v uint64) bool {
	if s, ok := f.lay.fieldSlot[name]; ok {
		f.Fields[s] = v
		f.fieldSet[s] = true
		return true
	}
	if f.extraFields == nil {
		f.extraFields = map[string]uint64{}
	}
	f.extraFields[name] = v
	return false
}

// SetValid marks a header instance present on the packet.
func (f *FlatPacket) SetValid(name string) bool {
	if s, ok := f.lay.validSlot[name]; ok {
		f.Valid[s] = true
		f.validSet[s] = true
		return true
	}
	if f.extraValid == nil {
		f.extraValid = map[string]bool{}
	}
	f.extraValid[name] = true
	return false
}

// load fills f from a map-based packet.
func (f *FlatPacket) load(p *Packet) {
	f.Reset()
	for k, v := range p.Fields {
		f.SetField(k, v)
	}
	for k, v := range p.Valid {
		if s, ok := f.lay.validSlot[k]; ok {
			f.Valid[s] = v
			f.validSet[s] = true
		} else {
			if f.extraValid == nil {
				f.extraValid = map[string]bool{}
			}
			f.extraValid[k] = v
		}
	}
	for k, v := range p.Bridge {
		if s, ok := f.lay.bridgeSlot[k]; ok {
			f.Bridge[s] = v
			f.bridgeSet[s] = true
		} else {
			if f.extraBridge == nil {
				f.extraBridge = map[string]uint64{}
			}
			f.extraBridge[k] = v
		}
	}
	f.Dropped, f.EgressPort, f.Mirrored, f.ToCPU = p.Dropped, p.EgressPort, p.Mirrored, p.ToCPU
}

// Packet converts back to the interpreter's map representation,
// reconstructing exactly the map contents RunReference/RunPath would have
// produced (presence included).
func (f *FlatPacket) Packet() *Packet {
	p := NewPacket()
	for s, set := range f.fieldSet {
		if set {
			p.Fields[f.lay.fieldName[s]] = f.Fields[s]
		}
	}
	for s, set := range f.validSet {
		if set {
			p.Valid[f.lay.validName[s]] = f.Valid[s]
		}
	}
	for s, set := range f.bridgeSet {
		if set {
			p.Bridge[f.lay.bridgeName[s]] = f.Bridge[s]
		}
	}
	for k, v := range f.extraFields {
		p.Fields[k] = v
	}
	for k, v := range f.extraValid {
		p.Valid[k] = v
	}
	for k, v := range f.extraBridge {
		p.Bridge[k] = v
	}
	p.Dropped, p.EgressPort, p.Mirrored, p.ToCPU = f.Dropped, f.EgressPort, f.Mirrored, f.ToCPU
	return p
}

// tableView is a lane's handle on one extern table. It starts as a shared
// reference to the deployment's (or control plane's) entry map; the first
// insert copies the map so a lane's data-plane inserts stay lane-local and
// batch workers never race on shared state.
type tableView struct {
	entries map[uint64]uint64
	owned   bool

	// Compiled-tier read index: a lane-local open-addressing mirror of
	// entries (interleaved key/value pairs), built lazily on the first
	// flatGet/flatHas so engine-only lanes never pay for it. See compile.go.
	flatKV []uint64
	nflat  int
	built  bool
}

func (tv *tableView) insert(k, v uint64) {
	if !tv.owned {
		m := make(map[uint64]uint64, len(tv.entries)+1)
		for k2, v2 := range tv.entries {
			m[k2] = v2
		}
		tv.entries = m
		tv.owned = true
	}
	tv.entries[k] = v
	if tv.built {
		tv.flatPut(k, v)
	}
}

// Engine is the lowered bytecode of one deployment: the reference pipeline
// unit plus one unit per switch with a program, all sharing a Layout.
// The code is immutable; all mutable execution state lives in Lanes.
// An Engine (and its internal lane pool) is single-caller: one goroutine
// calls RunBatch/RunPacket at a time, and RunBatch fans work out itself.
type Engine struct {
	dep         *Deployment
	layout      *Layout
	ref         *compiledUnit
	switchUnits map[string]*compiledUnit
	units       []*compiledUnit // indexed by stateIdx; units[0] is ref
	maxRegs     int
	maxGates    int
	lanes       []*Lane

	// tableGen counts control-plane mutations per unit (indexed by
	// stateIdx). Deployment.SetSwitchEntry/ClearSwitchTable bump only the
	// affected switch's counter; lanes lazily rebind that unit's table
	// views on the next run instead of the whole engine being re-lowered.
	tableGen []uint64

	codec *WireCodec // lazily built bytes-native parse/serialize programs
}

// NewEngine lowers a deployment into bytecode (with the superinstruction
// fusion pass applied). The lowered code is immutable: control-plane
// mutations through the deployment bump per-switch table generations that
// lanes pick up lazily, so an engine held directly stays valid across
// SetSwitchEntry/ClearSwitchTable.
func NewEngine(d *Deployment) (*Engine, error) {
	return newEngine(d, true)
}

// newEngine is NewEngine with the fusion pass optional — the unfused
// engine is the oracle the fused one is sweep-checked against.
func newEngine(d *Deployment, fuse bool) (*Engine, error) {
	irp := d.Plan.Input.IR
	lay := newLayout()
	lay.seed(irp)
	lo := &lowerer{irp: irp, lay: lay}

	ref, err := lo.lowerReference()
	if err != nil {
		return nil, err
	}
	ref.stateIdx = 0
	e := &Engine{
		dep:         d,
		layout:      lay,
		ref:         ref,
		switchUnits: map[string]*compiledUnit{},
		units:       []*compiledUnit{ref},
	}
	names := make([]string, 0, len(d.Programs))
	for sw := range d.Programs {
		names = append(names, sw)
	}
	sort.Strings(names)
	for _, sw := range names {
		u, err := lo.lowerSwitch(d.Programs[sw])
		if err != nil {
			return nil, err
		}
		u.stateIdx = len(e.units)
		e.units = append(e.units, u)
		e.switchUnits[sw] = u
	}
	if fuse {
		for _, u := range e.units {
			fuseUnit(u)
		}
	}
	for _, u := range e.units {
		if u.numRegs > e.maxRegs {
			e.maxRegs = u.numRegs
		}
		if len(u.gates) > e.maxGates {
			e.maxGates = len(u.gates)
		}
	}
	e.tableGen = make([]uint64, len(e.units))
	return e, nil
}

// invalidateTables marks one switch's control-plane contents changed (the
// empty name marks the reference unit's tables). Existing lanes rebind
// that unit's table views on their next run; the lowered code is untouched.
func (e *Engine) invalidateTables(sw string) {
	if sw == "" {
		e.tableGen[0]++
		return
	}
	if u := e.switchUnits[sw]; u != nil {
		e.tableGen[u.stateIdx]++
	}
}

// Flatten converts a map-based packet into a fresh engine packet.
func (e *Engine) Flatten(p *Packet) *FlatPacket {
	f := e.layout.newFlat()
	f.load(p)
	return f
}

// FlattenInto reuses an existing FlatPacket's storage.
func (e *Engine) FlattenInto(p *Packet, f *FlatPacket) { f.load(p) }

// NewFlatPacket returns an empty packet sized for this engine.
func (e *Engine) NewFlatPacket() *FlatPacket { return e.layout.newFlat() }

// Lane is one worker's execution state: a register arena sized for the
// largest unit, shard-gate snapshots, and per-unit global arrays and table
// views. Stateful programs evolve a lane's globals across packets exactly
// like a deployment's globals evolve across RunPath calls.
type Lane struct {
	eng      *Engine
	regs     []uint64
	gateVals []uint64
	globals  [][][]uint64 // [stateIdx][globalIdx] -> element array
	tables   [][]tableView
	tgen     []uint64 // table generation each unit's views were bound at
}

// NewLane allocates execution state bound to the deployment's current
// control-plane tables. Per-switch globals start zeroed, matching a fresh
// deployment.
func (e *Engine) NewLane() *Lane {
	l := &Lane{
		eng:      e,
		regs:     make([]uint64, e.maxRegs),
		gateVals: make([]uint64, e.maxGates),
		globals:  make([][][]uint64, len(e.units)),
		tables:   make([][]tableView, len(e.units)),
		tgen:     make([]uint64, len(e.units)),
	}
	for i := range e.units {
		l.globals[i] = make([][]uint64, len(e.layout.globals))
		for gi, spec := range e.layout.globals {
			l.globals[i][gi] = make([]uint64, spec.length)
		}
		l.tables[i] = make([]tableView, len(e.layout.externName))
		l.bindTables(i)
	}
	return l
}

// bindTables (re)binds one unit's table views to the deployment's current
// control-plane contents, discarding any copy-on-write clones. Called at
// lane creation and lazily when the unit's table generation moves.
func (l *Lane) bindTables(idx int) {
	e := l.eng
	var src *Tables
	if idx == 0 {
		src = e.dep.tables
	} else {
		src = e.dep.shardTables[e.units[idx].name]
	}
	views := l.tables[idx]
	for ei, name := range e.layout.externName {
		views[ei] = tableView{}
		if src != nil {
			if es := src.Externs[name]; es != nil {
				views[ei] = tableView{entries: es.Entries}
			}
		}
	}
	l.tgen[idx] = e.tableGen[idx]
}

// syncTables rebinds a unit's views if the deployment mutated that
// switch's tables since the lane last ran it. One integer compare on the
// hot path; the rebind itself happens only after a control-plane change.
func (l *Lane) syncTables(idx int) {
	if l.tgen[idx] != l.eng.tableGen[idx] {
		l.bindTables(idx)
	}
}

// opval resolves one operand. Kept free of receiver state so it inlines
// into the dispatch loop.
func opval(r opRef, regs []uint64, f *FlatPacket) uint64 {
	switch r.kind {
	case oConst:
		return r.c
	case oReg:
		return regs[r.idx]
	default:
		return f.Fields[r.idx]
	}
}

func store(in *binstr, regs []uint64, f *FlatPacket, v uint64) {
	switch in.destKind {
	case dReg:
		regs[in.dest] = v & in.destMask
	case dField:
		f.Fields[in.dest] = v & in.destMask
		f.fieldSet[in.dest] = true
	}
}

// store2 writes a fused superinstruction's second destination.
func store2(in *binstr, regs []uint64, f *FlatPacket, v uint64) {
	switch in.dest2Kind {
	case dReg:
		regs[in.dest2] = v & in.dest2Mask
	case dField:
		f.Fields[in.dest2] = v & in.dest2Mask
		f.fieldSet[in.dest2] = true
	}
}

var zeroCtx Context

// exec runs one unit's code against the lane's state. Guards and gates are
// pre-resolved index lookups; nothing in this loop allocates.
func (l *Lane) exec(u *compiledUnit, ctx *Context, f *FlatPacket) {
	regs := l.regs
	tabs := l.tables[u.stateIdx]
	globs := l.globals[u.stateIdx]
	code := u.code
	for i := range code {
		in := &code[i]
		if in.g1reg >= 0 {
			// Inlined single-conjunct guard (the guard→assign fusion).
			if (regs[in.g1reg] != 0) == in.g1neg {
				continue
			}
		} else if in.guardEnd > in.guardOff {
			ok := true
			for _, g := range u.guards[in.guardOff:in.guardEnd] {
				if (regs[g.reg] != 0) == g.neg {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
		}
		if in.gate >= 0 && l.gateVals[in.gate] != 0 {
			continue
		}
		switch in.op {
		case bAssign:
			store(in, regs, f, opval(in.a, regs, f))
		case bBin:
			store(in, regs, f, evalBin(in.binop, opval(in.a, regs, f), opval(in.b, regs, f)))
		case bNot:
			v := uint64(0)
			if opval(in.a, regs, f) == 0 {
				v = 1
			}
			store(in, regs, f, v)
		case bSelect:
			if opval(in.a, regs, f) != 0 {
				store(in, regs, f, opval(in.b, regs, f))
			} else {
				store(in, regs, f, opval(in.c, regs, f))
			}
		case bHash:
			var h uint64 = 14695981039346656037
			for _, a := range u.args[in.argsOff:in.argsEnd] {
				v := opval(a, regs, f)
				for sh := uint(0); sh < 64; sh += 8 {
					h ^= (v >> sh) & 0xff
					h *= 1099511628211
				}
			}
			if in.crc16 {
				h = (h >> 16) ^ (h & 0xffff)
			}
			store(in, regs, f, h&in.auxMask)
		case bLib:
			var v uint64
			switch in.table {
			case libSwitchID:
				v = ctx.SwitchID
			case libIngressTS:
				v = ctx.IngressTS
			case libEgressTS:
				v = ctx.EgressTS
			case libQueueLen:
				v = ctx.QueueLen
			case libQueueTime:
				v = ctx.QueueTime
			case libIngressPort:
				v = ctx.IngressPort
			}
			store(in, regs, f, v)
		case bHeaderAdd:
			f.Valid[in.table] = true
			f.validSet[in.table] = true
		case bHeaderRemove:
			f.Valid[in.table] = false
			f.validSet[in.table] = true
		case bDrop:
			f.Dropped = true
		case bForward:
			f.EgressPort = opval(in.a, regs, f)
		case bMirror:
			f.Mirrored = true
		case bToCPU:
			f.ToCPU = true
		case bMember:
			_, hit := tabs[in.table].entries[opval(in.a, regs, f)]
			v := uint64(0)
			if hit {
				v = 1
			}
			store(in, regs, f, v)
		case bLookup:
			store(in, regs, f, tabs[in.table].entries[opval(in.a, regs, f)])
		case bGlobalRead:
			arr := globs[in.table]
			idx := opval(in.a, regs, f)
			var v uint64
			if idx < uint64(len(arr)) {
				v = arr[idx]
			}
			store(in, regs, f, v)
		case bGlobalWrite:
			arr := globs[in.table]
			idx := opval(in.a, regs, f)
			if idx < uint64(len(arr)) {
				arr[idx] = opval(in.b, regs, f) & in.auxMask
			}
		case bInsert:
			tabs[in.table].insert(opval(in.a, regs, f), opval(in.b, regs, f))
		case bHashLookup, bHashMember:
			var h uint64 = 14695981039346656037
			for _, a := range u.args[in.argsOff:in.argsEnd] {
				v := opval(a, regs, f)
				for sh := uint(0); sh < 64; sh += 8 {
					h ^= (v >> sh) & 0xff
					h *= 1099511628211
				}
			}
			if in.crc16 {
				h = (h >> 16) ^ (h & 0xffff)
			}
			store(in, regs, f, h&in.auxMask)
			// The lookup key is the hash register after its store mask,
			// exactly what the unfused pair would read back.
			key := regs[in.dest]
			if in.op == bHashLookup {
				store2(in, regs, f, tabs[in.table].entries[key])
			} else {
				_, hit := tabs[in.table].entries[key]
				v := uint64(0)
				if hit {
					v = 1
				}
				store2(in, regs, f, v)
			}
		case bBinSelect:
			store(in, regs, f, evalBin(in.binop, opval(in.a, regs, f), opval(in.b, regs, f)))
			var v uint64
			if regs[in.dest] != 0 {
				v = opval(u.args[in.argsOff], regs, f)
			} else {
				v = opval(u.args[in.argsOff+1], regs, f)
			}
			store2(in, regs, f, v)
		}
	}
}

// runSwitch executes one switch unit: fresh registers, bridge imports,
// shard-gate snapshot, code, bridge exports — the compiled equivalent of
// one RunPath hop.
func (l *Lane) runSwitch(u *compiledUnit, ctx *Context, f *FlatPacket) {
	l.syncTables(u.stateIdx)
	clear(l.regs[:u.numRegs])
	for _, m := range u.imports {
		l.regs[m.reg] = f.Bridge[m.slot]
	}
	for i, rs := range u.gates {
		l.gateVals[i] = l.regs[rs]
	}
	l.exec(u, ctx, f)
	for _, m := range u.exports {
		f.Bridge[m.slot] = l.regs[m.reg]
		f.bridgeSet[m.slot] = true
	}
}

// RunReference executes the one-big-pipeline reference semantics on the
// lane, equivalent to dataplane.RunReference against the engine's tables.
func (e *Engine) RunReference(l *Lane, ctx *Context, f *FlatPacket) {
	if ctx == nil {
		ctx = &zeroCtx
	}
	l.syncTables(0)
	clear(l.regs[:e.ref.numRegs])
	l.exec(e.ref, ctx, f)
}

// RunPacket pushes one packet along a flow path, mutating it in place —
// the compiled equivalent of Deployment.RunPath minus the input clone.
func (e *Engine) RunPacket(l *Lane, path []string, ctx *Context, f *FlatPacket) {
	if ctx == nil {
		ctx = &zeroCtx
	}
	for _, sw := range path {
		if u := e.switchUnits[sw]; u != nil {
			l.runSwitch(u, ctx, f)
		}
	}
}

// RunPacketContexts is RunPacket with a per-switch environment.
func (e *Engine) RunPacketContexts(l *Lane, path []string, ctxOf func(sw string) *Context, f *FlatPacket) {
	for _, sw := range path {
		u := e.switchUnits[sw]
		if u == nil {
			continue
		}
		ctx := ctxOf(sw)
		if ctx == nil {
			ctx = &zeroCtx
		}
		l.runSwitch(u, ctx, f)
	}
}

// RunBatch replays a batch of packets along a path, sharding the batch
// into contiguous chunks across a bounded worker pool with one lane per
// worker. Each packet is mutated in place. Lanes persist across calls, so
// stateful programs see a continuous packet stream per lane; chunking is
// deterministic for a given worker count.
func (e *Engine) RunBatch(path []string, ctx *Context, pkts []*FlatPacket, workers int) {
	n := len(pkts)
	if n == 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	e.ensureLanes(workers)
	if workers == 1 {
		l := e.lanes[0]
		for _, f := range pkts {
			e.RunPacket(l, path, ctx, f)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	par.For(workers, workers, func(w int) {
		lo := w * chunk
		if lo >= n {
			return
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		l := e.lanes[w]
		for _, f := range pkts[lo:hi] {
			e.RunPacket(l, path, ctx, f)
		}
	})
}

func (e *Engine) ensureLanes(n int) {
	for len(e.lanes) < n {
		e.lanes = append(e.lanes, e.NewLane())
	}
}

// Layout sanity check for callers mixing engines.
func (e *Engine) owns(f *FlatPacket) error {
	if f.lay != e.layout {
		return fmt.Errorf("dataplane: FlatPacket belongs to a different engine layout")
	}
	return nil
}
