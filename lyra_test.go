package lyra

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const quickLB = `
header_type ipv4_t { bit[32] srcAddr; bit[32] dstAddr; bit[8] protocol; }
header ipv4_t ipv4;
pipeline[LB]{loadbalancer};
algorithm loadbalancer {
  extern dict<bit[32] hash, bit[32] ip>[1024] conn_table;
  bit[32] hash;
  hash = crc32_hash(ipv4.srcAddr, ipv4.dstAddr, ipv4.protocol);
  if (hash in conn_table) {
    ipv4.dstAddr = conn_table[hash];
  }
}
`

const quickScope = `loadbalancer: [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]`

func TestCompileEndToEnd(t *testing.T) {
	res, err := Compile(Request{
		Source:    quickLB,
		ScopeSpec: quickScope,
		Network:   Testbed(),
	})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if len(res.Artifacts) == 0 {
		t.Fatal("no artifacts")
	}
	if res.CompileTime <= 0 {
		t.Error("no compile time recorded")
	}
	for _, rep := range res.Reports {
		if !rep.OK {
			t.Errorf("%s failed verification: %v", rep.Switch, rep.Problems)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	net := Testbed()
	cases := []struct {
		name string
		req  Request
		want string
	}{
		{"no network", Request{Source: quickLB, ScopeSpec: quickScope}, "network is required"},
		{"syntax", Request{Source: "algorithm {", ScopeSpec: quickScope, Network: net}, "parse"},
		{"semantic", Request{Source: "algorithm a { ghost(); }", ScopeSpec: "a: [ToR1|PER-SW|-]", Network: net}, "check"},
		{"scope", Request{Source: quickLB, ScopeSpec: "loadbalancer: [oops", Network: net}, "scope"},
		{"missing scope", Request{Source: quickLB, ScopeSpec: "", Network: net}, "no scope"},
	}
	for _, c := range cases {
		_, err := Compile(c.req)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestWriteTo(t *testing.T) {
	res, err := Compile(Request{Source: quickLB, ScopeSpec: quickScope, Network: Testbed()})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := res.WriteTo(dir); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	var code, cp int
	for _, e := range entries {
		switch filepath.Ext(e.Name()) {
		case ".p4", ".npl":
			code++
		case ".py":
			cp++
		}
	}
	if code == 0 || cp == 0 {
		t.Errorf("dir has %d code files and %d control-plane files", code, cp)
	}
}

func TestSimulateRoundTrip(t *testing.T) {
	res, err := Compile(Request{Source: quickLB, ScopeSpec: quickScope, Network: Testbed()})
	if err != nil {
		t.Fatal(err)
	}
	tables := NewTables()
	sim, err := res.Simulate(tables)
	if err != nil {
		t.Fatal(err)
	}
	pkt := NewPacket()
	pkt.Valid["ipv4"] = true
	pkt.Fields["ipv4.srcAddr"] = 0x0A000001
	pkt.Fields["ipv4.dstAddr"] = 0x0B000002
	pkt.Fields["ipv4.protocol"] = 6
	ctx := &SimContext{}
	ref, err := sim.RunReference(ctx, pkt)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range res.FlowPaths("loadbalancer") {
		got, err := sim.RunPath(path, ctx, pkt)
		if err != nil {
			t.Fatal(err)
		}
		if got.Summary() != ref.Summary() {
			t.Errorf("path %v mismatch:\n  ref:  %s\n  dist: %s", path, ref.Summary(), got.Summary())
		}
	}
}

func TestDialectOption(t *testing.T) {
	res, err := Compile(Request{Source: quickLB, ScopeSpec: quickScope, Network: Testbed(), Dialect: P416})
	if err != nil {
		t.Fatal(err)
	}
	for _, sw := range res.Switches() {
		a := res.Artifact(sw)
		if a.Model.Lang.String() == "P4" && a.Dialect != "P4_16" {
			t.Errorf("%s: got %s", sw, a.Dialect)
		}
	}
}

func TestObjectiveMinSwitches(t *testing.T) {
	res, err := Compile(Request{
		Source: quickLB, ScopeSpec: quickScope, Network: Testbed(),
		Objective: ObjectiveMinSwitches,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Artifacts) > 2 {
		t.Errorf("min-switches produced %d artifacts", len(res.Artifacts))
	}
}

func TestRunPathBytes(t *testing.T) {
	src := `
header_type eth_t { bit[48] src_mac; bit[16] ether_type; }
header eth_t eth;
header_type tag_t { bit[8] mark; }
header tag_t tag;
parser_node start {
  extract(eth);
  select(eth.ether_type) {
    0x0900: parse_tag;
    default: accept;
  }
}
parser_node parse_tag { extract(tag); }
pipeline[P]{marker};
algorithm marker {
  extern list<bit[48] mac>[8] watch;
  if (eth.src_mac in watch) {
    add_header(tag);
    tag.mark = 7;
    eth.ether_type = 0x0900;
  }
}
`
	res, err := Compile(Request{
		Source:    src,
		ScopeSpec: "marker: [ ToR3 | PER-SW | - ]",
		Network:   Testbed(),
	})
	if err != nil {
		t.Fatal(err)
	}
	tables := NewTables()
	tables.Set("watch", 0x112233445566, 1)
	sim, err := res.Simulate(tables)
	if err != nil {
		t.Fatal(err)
	}
	in := NewPacket()
	in.Valid["eth"] = true
	in.Fields["eth.src_mac"] = 0x112233445566
	in.Fields["eth.ether_type"] = 0x0800
	wire, err := sim.Serialize(in, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	out, err := sim.RunPathBytes([]string{"ToR3"}, &SimContext{}, wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(wire)+1 { // tag_t adds one byte
		t.Fatalf("wire %d -> %d bytes, want +1", len(wire), len(out))
	}
	pkt, payload, err := sim.ParseBytes(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != "payload" {
		t.Errorf("payload = %q", payload)
	}
	if !pkt.Valid["tag"] || pkt.Fields["tag.mark"] != 7 {
		t.Errorf("tag missing: %s", pkt.Summary())
	}
}

// TestWithOptimize drives the rewrite search through the public API: the
// option threads the search into the pipeline, the report lands on the
// Result, and the winning program ships strictly fewer tables than the
// plain compile of the same nested-gateway source.
func TestWithOptimize(t *testing.T) {
	const src = `
header_type ipv4_t { bit[32] srcAddr; bit[32] dstAddr; bit[8] tos; bit[8] ttl; }
header ipv4_t ipv4;
pipeline[ACL]{acl};
algorithm acl {
  if (ipv4.tos == 1) {
    if (ipv4.ttl == 2) {
      drop();
    }
  }
}
`
	const scopeSpec = "acl: [ ToR1 | PER-SW | - ]"
	ctx := context.Background()

	plain, err := New().Compile(ctx, src, scopeSpec, Testbed())
	if err != nil {
		t.Fatalf("plain compile: %v", err)
	}
	if plain.Optimization != nil {
		t.Fatal("plain compile carries an optimization report")
	}

	res, err := New(WithOptimize(OptimizeOptions{Seed: 1})).Compile(ctx, src, scopeSpec, Testbed())
	if err != nil {
		t.Fatalf("optimized compile: %v", err)
	}
	rep := res.Optimization
	if rep == nil {
		t.Fatal("WithOptimize produced no optimization report")
	}
	if !rep.Improved || len(rep.Applied) == 0 {
		t.Fatalf("search found no certified improvement:\n%s", rep)
	}
	if !rep.BestCost.Less(rep.BaseCost) {
		t.Fatalf("best cost %s not below base %s", rep.BestCost, rep.BaseCost)
	}
	if rep.CertifyAttempts == 0 || rep.Rejected != 0 {
		t.Fatalf("certification bookkeeping off: attempts=%d rejected=%d",
			rep.CertifyAttempts, rep.Rejected)
	}
	pt, ot := plain.Artifact("ToR1").Tables, res.Artifact("ToR1").Tables
	if ot >= pt {
		t.Fatalf("optimized artifact has %d tables, plain has %d — no reduction shipped", ot, pt)
	}
}
