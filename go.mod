module lyra

go 1.22
