// Command lyra-fuzz runs a differential-testing campaign: it generates
// random well-typed Lyra programs, topologies, scopes, and packet traces,
// compiles each case for every dialect at two parallelism levels, executes
// the compiled deployments against the one-big-pipeline reference, and
// classifies every outcome. Unexplained outcomes (anything other than
// equivalent or consistently-infeasible) are shrunk to minimal replayable
// bundles and written under -out.
//
// Usage:
//
//	lyra-fuzz -n 500 -seed 1
//	lyra-fuzz -n 100 -seed 7 -mutation drop-last-instr -out testdata/difftest/failures
//
// The -mutation flag injects a named backend bug so the oracle's detection
// and shrinking paths can be exercised end to end; see -mutation help for
// the list. The -stateful flag switches the generator to flow-keyed
// stateful streaming cases, which additionally replay every case through
// OpenStream on all three executor tiers (one and three lanes, chunked
// feeds) against a one-shot replay. Exit status is nonzero iff the
// campaign had unexplained cases.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"lyra/internal/difftest"
)

func main() {
	var (
		n        = flag.Int("n", 100, "number of cases to run")
		seed     = flag.Int64("seed", 1, "campaign seed (case i uses a seed derived from it)")
		mutation = flag.String("mutation", "", "inject a named backend bug: "+strings.Join(difftest.MutationNames(), ", "))
		outDir   = flag.String("out", "difftest-failures", "directory for failure bundles")
		shrink   = flag.Bool("shrink", true, "minimize failing cases before writing bundles")
		parallel = flag.Int("parallel", 0, "compiler worker pool size for the parallel compile (0 = all CPUs)")
		stateful = flag.Bool("stateful", false, "generate flow-keyed stateful streaming cases and run the streaming oracle (stream-vs-one-shot, every tier, chunked lanes)")
		incr     = flag.Bool("incremental", false, "cross-check each compiling case against an incremental identity recompile (cached solver reuse must reproduce the plan)")
		optimize = flag.Bool("optimize", false, "cross-check each compiling case against a rewrite-search compile (the optimized deployment must keep the original's reference semantics)")
		scale    = flag.Bool("scale", false, "cross-check each compiling case against the datacenter-scale modes (no symmetry dedup, 2-way solver portfolio, lazy path enumeration — all must be byte-identical)")
		quiet    = flag.Bool("q", false, "suppress per-case progress dots")
	)
	flag.Parse()
	if *n <= 0 {
		fmt.Fprintln(os.Stderr, "lyra-fuzz: -n must be positive")
		os.Exit(2)
	}
	if _, ok := difftest.MutationByName(*mutation); !ok {
		fmt.Fprintf(os.Stderr, "lyra-fuzz: unknown mutation %q (have: %s)\n",
			*mutation, strings.Join(difftest.MutationNames(), ", "))
		os.Exit(2)
	}
	opts := difftest.Options{
		Mutation:    *mutation,
		SkipShrink:  !*shrink,
		Parallelism: *parallel,
		Stateful:    *stateful,
		Incremental: *incr,
		Optimize:    *optimize,
		Scale:       *scale,
	}

	progress := func(i int, out difftest.Outcome) {
		if *quiet {
			return
		}
		switch {
		case out.Class == difftest.Equivalent:
			fmt.Print(".")
		case out.Class == difftest.Infeasible:
			fmt.Print("i")
		default:
			fmt.Print("F")
		}
		if (i+1)%50 == 0 || i+1 == *n {
			fmt.Printf(" %d/%d\n", i+1, *n)
		}
	}

	sum := difftest.Run(*n, *seed, opts, progress)

	sha := gitSHA()
	for _, f := range sum.Failures {
		c, out := f.Case, f.Outcome
		if f.Shrunk != nil {
			c, out = f.Shrunk, f.ShrunkOutcome
		}
		meta := difftest.BundleMeta{
			Seed:         f.Seed,
			CaseIndex:    f.Index,
			CampaignSeed: *seed,
			GitSHA:       sha,
			Class:        out.Class.String(),
			Detail:       out.Detail,
			Mutation:     *mutation,
			CreatedBy:    "lyra-fuzz",
		}
		dir := filepath.Join(*outDir, fmt.Sprintf("case-%04d-%s", f.Index, out.Class))
		if err := difftest.WriteBundle(dir, c, meta); err != nil {
			fmt.Fprintf(os.Stderr, "lyra-fuzz: writing bundle for case %d: %v\n", f.Index, err)
			os.Exit(1)
		}
		fmt.Printf("case %d (seed %d): %s\n  bundle: %s\n", f.Index, f.Seed, f.Outcome, dir)
	}

	var classes []difftest.Class
	for c := range sum.Counts {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	fmt.Printf("%d cases:", sum.Cases)
	for _, c := range classes {
		fmt.Printf(" %d %s", sum.Counts[c], c)
	}
	fmt.Println()

	if u := sum.Unexplained(); u > 0 {
		fmt.Fprintf(os.Stderr, "lyra-fuzz: %d unexplained case(s); bundles under %s\n", u, *outDir)
		os.Exit(1)
	}
}

// gitSHA pins failure bundles to the exact compiler revision, so a bundle
// replayed later can be matched against the code that produced it.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}
