// Command lyra-bench regenerates the paper's evaluation tables and figures
// (§7) as text:
//
//	lyra-bench -experiment fig9     # Figure 9: portability comparison table
//	lyra-bench -experiment fig10    # Figure 10: compile-time scalability
//	lyra-bench -experiment phases   # per-phase timing breakdown
//	lyra-bench -experiment ladder   # incremental fallback ladder vs re-encode baseline
//	lyra-bench -experiment ext      # §7.2 extensibility case study
//	lyra-bench -experiment comp     # §7.3 composition case study
//	lyra-bench -experiment traffic  # packet replay: interpreter vs bytecode engine
//	lyra-bench -experiment stream   # streaming replay: scenario library through OpenStream
//	lyra-bench -experiment serve    # daemon churn storm (robustness under load)
//	lyra-bench -experiment optimize # rewrite search: certified program optimization
//	lyra-bench -experiment scale    # datacenter-scale sweep: lazy paths + symmetry dedup + churn
//	lyra-bench -experiment phases,ladder -out BENCH_compile.json
//	lyra-bench -experiment all
//
// -experiment accepts a comma-separated list; unknown names are rejected
// with the valid list. With -out, the phases and ladder results that ran
// are merged into one JSON artifact (the BENCH_compile.json the CI smoke
// job publishes), preserving any keys other experiments wrote there; the
// traffic and stream experiments merge their results under the "traffic"
// and "stream" keys of -dataplane-out (BENCH_dataplane.json), each
// preserving the other's key; the serve experiment appends a
// provenance-stamped run to -serve-out (BENCH_serve.json) and exits
// nonzero if the storm violated the robustness contract; the optimize
// experiment appends a provenance-stamped run to the "optimize" key of
// -optimize-out (default -out) and exits nonzero if the search found no
// certified improvement; the scale experiment appends a provenance-stamped
// run to the "scale" key of -scale-out (default -out) and, with
// -scale-assert, exits nonzero unless symmetry dedup was active, the lazy
// enumerator bounded the path working set, and the dedup compile beat the
// no-dedup baseline by the given factor.
//
// -cpuprofile and -memprofile write pprof profiles covering whichever
// experiments ran — the intended workflow for hunting hot spots in the
// replay engine (see EXPERIMENTS.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"lyra/internal/eval"
	"lyra/internal/serve/churn"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "comma-separated list of: fig9 | fig10 | phases | ladder | ext | comp | ablation | traffic | stream | serve | optimize | scale | all")
		ks         = flag.String("k", "4,8,16,24,32", "fat-tree sizes for fig10 and phases")
		parallel   = flag.Int("parallel", 0, "worker pool size for phases (0 = all CPUs)")
		ladderK    = flag.Int("ladder-k", 16, "fat-tree size for the ladder comparison")
		ladderIt   = flag.Int("ladder-iters", 11, "measurement repetitions per ladder mode")
		outPath    = flag.String("out", "", "write the phases/ladder results as one JSON artifact")

		trafficK       = flag.Int("traffic-k", 8, "fat-tree size for the traffic replay")
		trafficPackets = flag.Int("traffic-packets", 200_000, "packets per traffic measurement")
		trafficWorkers = flag.Int("traffic-workers", 0, "max replay workers (0 = all CPUs)")
		trafficSlack   = flag.Float64("traffic-assert-scaling", 0, "fail unless worker scaling is monotone and the compiled tier keeps up with the engine, within this slack factor (0 = no assertion)")
		dataplaneOut   = flag.String("dataplane-out", "", "merge the traffic/stream results into a JSON artifact (BENCH_dataplane.json)")

		streamK       = flag.Int("stream-k", 8, "fat-tree pod size for the streaming replay")
		streamPackets = flag.Int("stream-packets", 100_000, "packets per streaming measurement")
		streamLanes   = flag.Int("stream-lanes", 0, "fan-out lanes for lane-safe scenarios (0 = CPUs, capped at 4)")
		streamAllocs  = flag.Float64("stream-assert-allocs", -1, "fail if any engine/compiled stream point allocates more than this per packet (negative = no assertion)")

		serveSeed       = flag.Int64("serve-seed", 1, "churn storm seed")
		serveEvents     = flag.Int("serve-events", 500, "fault/recovery events in the churn storm")
		serveClients    = flag.Int("serve-clients", 8, "concurrent storm clients")
		serveSessions   = flag.Int("serve-sessions", 4, "tenant sessions in the storm")
		serveDuration   = flag.Duration("serve-duration", 30*time.Second, "churn storm wall-clock cap")
		servePanicEvery = flag.Int("serve-panic-every", 25, "inject a panicking request every N events (0 = off)")
		serveBurstEvery = flag.Int("serve-burst-every", 50, "fire an identical-request burst every N events (0 = off)")
		serveBurstSize  = flag.Int("serve-burst-size", 8, "requests per burst (oversized vs daemon capacity)")
		serveInflight   = flag.Int("serve-inflight", 4, "daemon MaxInflight during the storm")
		serveQueue      = flag.Int("serve-queue", 8, "daemon QueueDepth during the storm")
		serveOut        = flag.String("serve-out", "", "append the storm scores to a JSON artifact (BENCH_serve.json)")

		scaleKs        = flag.String("scale-k", "8,16", "fat-tree sizes for the datacenter-scale sweep (k pods of k switches each)")
		scaleChurn     = flag.Int("scale-churn", 20, "churn events recompiled per scale point")
		scaleSeed      = flag.Int64("scale-seed", 1, "churn storm seed for the scale sweep")
		scalePortfolio = flag.Int("scale-portfolio", 0, "portfolio width per component (0 = canonical solver only)")
		scaleRepeats   = flag.Int("scale-repeats", 0, "timed-compile repetitions per point, fastest recorded (0 = default 3; plans are byte-identical across repeats)")
		scaleAssert    = flag.Float64("scale-assert", 0, "fail unless symmetry dedup is active, peak paths held stays bounded, and the dedup compile beats no-dedup by this factor at every k >= 16 (0 = no assertion)")
		scaleOut       = flag.String("scale-out", "", "append the scale run to this JSON artifact (defaults to -out)")

		optimizeK       = flag.Int("optimize-k", 4, "fat-tree pod size for the rewrite-search experiment")
		optimizeSeed    = flag.Int64("optimize-seed", 1, "rewrite-search trace seed")
		optimizeMeasure = flag.Int("optimize-measure-packets", 0, "replay packets for measured pkts/s in the optimize report (0 = skip measurement)")
		optimizeOut     = flag.String("optimize-out", "", "append the optimize run to this JSON artifact (defaults to -out)")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile covering the selected experiments")
		memProfile = flag.String("memprofile", "", "write a heap profile after the selected experiments")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lyra-bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "lyra-bench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "lyra-bench: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "lyra-bench: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	// Every name must be a known experiment: a typo that silently selected
	// nothing used to exit 0 having measured nothing.
	valid := []string{"fig9", "fig10", "phases", "ladder", "ext", "comp",
		"ablation", "traffic", "stream", "serve", "optimize", "scale", "all"}
	known := map[string]bool{}
	for _, name := range valid {
		known[name] = true
	}
	selected := map[string]bool{}
	var unknown []string
	for _, name := range strings.Split(*experiment, ",") {
		name = strings.TrimSpace(name)
		if !known[name] {
			unknown = append(unknown, name)
			continue
		}
		selected[name] = true
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		fmt.Fprintf(os.Stderr, "lyra-bench: unknown experiment(s): %s\nvalid experiments: %s\n",
			strings.Join(unknown, ", "), strings.Join(valid, ", "))
		os.Exit(2)
	}
	run := func(name string, fn func() error) {
		if !selected["all"] && !selected[name] {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "lyra-bench %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	// artifact collects the JSON-able results of whichever experiments ran.
	var artifact struct {
		Phases []eval.PhasePoint `json:"phases,omitempty"`
		Ladder *eval.LadderPoint `json:"ladder,omitempty"`
	}

	run("fig9", func() error {
		rows, err := eval.Figure9()
		if err != nil {
			return err
		}
		fmt.Println("== Figure 9: Lyra vs. human-written P4_14 ==")
		fmt.Print(eval.FormatFigure9(rows))
		fmt.Println()
		return nil
	})

	run("fig10", func() error {
		sizes, err := parseKs(*ks)
		if err != nil {
			return err
		}
		points, err := eval.Figure10(sizes)
		if err != nil {
			return err
		}
		fmt.Println("== Figure 10: compile-time scalability ==")
		fmt.Print(eval.FormatFigure10(points))
		fmt.Println()
		return nil
	})

	run("phases", func() error {
		sizes, err := parseKs(*ks)
		if err != nil {
			return err
		}
		points, err := eval.PhaseBreakdown(sizes, *parallel)
		if err != nil {
			return err
		}
		artifact.Phases = points
		fmt.Println("== Per-phase compile-time breakdown ==")
		fmt.Print(eval.FormatPhases(points))
		fmt.Println()
		return nil
	})

	run("ladder", func() error {
		pt, err := eval.LadderComparison(*ladderK, *ladderIt)
		if err != nil {
			return err
		}
		artifact.Ladder = pt
		fmt.Println("== Fallback ladder: incremental solver vs re-encode baseline ==")
		fmt.Print(eval.FormatLadder(pt))
		fmt.Println()
		return nil
	})

	run("ext", func() error {
		steps, err := eval.Extensibility()
		if err != nil {
			return err
		}
		fmt.Println("== §7.2 Extensibility: growing ConnTable ==")
		fmt.Print(eval.FormatExtensibility(steps))
		fmt.Println()
		return nil
	})

	run("ablation", func() error {
		rows, err := eval.Ablations()
		if err != nil {
			return err
		}
		fmt.Println("== Ablations: synthesized P4 tables per optimization ==")
		fmt.Print(eval.FormatAblations(rows))
		fmt.Println()
		return nil
	})

	run("traffic", func() error {
		points, err := eval.TrafficReplay(*trafficK, *trafficPackets, *trafficWorkers)
		if err != nil {
			return err
		}
		fmt.Println("== Traffic replay: interpreter vs bytecode engine vs compiled ==")
		fmt.Print(eval.FormatTraffic(points))
		fmt.Println()
		if *trafficSlack > 0 {
			if violations := eval.CheckTrafficScaling(points, *trafficSlack); len(violations) > 0 {
				return fmt.Errorf("scaling contract violated:\n  %s", strings.Join(violations, "\n  "))
			}
			fmt.Printf("scaling contract held (slack %.2f)\n", *trafficSlack)
		}
		if *dataplaneOut != "" {
			if err := mergeArtifactKey(*dataplaneOut, "traffic", points); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *dataplaneOut)
		}
		return nil
	})

	run("stream", func() error {
		points, err := eval.StreamReplay(*streamK, *streamPackets, *streamLanes)
		if err != nil {
			return err
		}
		fmt.Println("== Streaming replay: scenario library through OpenStream ==")
		fmt.Print(eval.FormatStream(points))
		fmt.Println()
		if *streamAllocs >= 0 {
			if violations := eval.CheckStreamAllocs(points, *streamAllocs); len(violations) > 0 {
				return fmt.Errorf("allocation contract violated:\n  %s", strings.Join(violations, "\n  "))
			}
			fmt.Printf("allocation contract held (budget %.4f allocs/pkt)\n", *streamAllocs)
		}
		if *dataplaneOut != "" {
			if err := mergeArtifactKey(*dataplaneOut, "stream", points); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *dataplaneOut)
		}
		return nil
	})

	run("serve", func() error {
		cfg := churn.Config{
			Seed:        *serveSeed,
			Events:      *serveEvents,
			Clients:     *serveClients,
			Sessions:    *serveSessions,
			Duration:    *serveDuration,
			PanicEvery:  *servePanicEvery,
			BurstEvery:  *serveBurstEvery,
			BurstSize:   *serveBurstSize,
			MaxInflight: *serveInflight,
			QueueDepth:  *serveQueue,
		}
		res, err := churn.Run(cfg)
		if err != nil {
			return err
		}
		fmt.Println("== Serve daemon churn storm ==")
		fmt.Print(res.Format())
		fmt.Println()
		if *serveOut != "" {
			run := eval.ServeRun{
				Params: eval.ServeParams{
					Seed:        cfg.Seed,
					Events:      cfg.Events,
					Clients:     cfg.Clients,
					Sessions:    cfg.Sessions,
					Duration:    cfg.Duration.String(),
					PanicEvery:  cfg.PanicEvery,
					BurstEvery:  cfg.BurstEvery,
					BurstSize:   cfg.BurstSize,
					MaxInflight: cfg.MaxInflight,
					QueueDepth:  cfg.QueueDepth,
				},
				Result: res,
			}
			run.Stamp()
			if err := eval.AppendServeRun(*serveOut, run); err != nil {
				return err
			}
			fmt.Printf("appended run to %s\n", *serveOut)
		}
		if len(res.Violations) > 0 {
			return fmt.Errorf("churn storm violated the robustness contract: %s",
				strings.Join(res.Violations, "; "))
		}
		return nil
	})

	run("optimize", func() error {
		params := eval.OptimizeParams{
			K:              *optimizeK,
			Seed:           *optimizeSeed,
			MeasurePackets: *optimizeMeasure,
		}.WithDefaults()
		res, err := eval.RunOptimize(params)
		if err != nil {
			return err
		}
		fmt.Println("== Rewrite search: certified program optimization ==")
		fmt.Print(eval.FormatOptimize(res))
		fmt.Println()
		dest := *optimizeOut
		if dest == "" {
			dest = *outPath
		}
		if dest != "" {
			entry := eval.OptimizeRun{Params: params, Result: *res}
			entry.Stamp()
			if err := eval.AppendOptimizeRun(dest, entry); err != nil {
				return err
			}
			fmt.Printf("appended optimize run to %s\n", dest)
		}
		return nil
	})

	run("scale", func() error {
		sizes, err := parseKs(*scaleKs)
		if err != nil {
			return err
		}
		params := eval.ScaleParams{
			Ks:          sizes,
			ChurnEvents: *scaleChurn,
			Seed:        *scaleSeed,
			Portfolio:   *scalePortfolio,
			Repeats:     *scaleRepeats,
		}.WithDefaults()
		points, err := eval.RunScale(params)
		if err != nil {
			return err
		}
		fmt.Println("== Datacenter scale: lazy paths + symmetry dedup + churn ==")
		fmt.Print(eval.FormatScale(points))
		fmt.Println()
		if *scaleAssert > 0 {
			if violations := eval.CheckScale(points, *scaleAssert); len(violations) > 0 {
				return fmt.Errorf("scaling contract violated:\n  %s", strings.Join(violations, "\n  "))
			}
			fmt.Printf("scaling contract held (min speedup %.1fx at k >= 16)\n", *scaleAssert)
		}
		dest := *scaleOut
		if dest == "" {
			dest = *outPath
		}
		if dest != "" {
			entry := eval.ScaleRun{Params: params, Points: points}
			entry.Stamp()
			if err := eval.AppendScaleRun(dest, entry); err != nil {
				return err
			}
			fmt.Printf("appended scale run to %s\n", dest)
		}
		return nil
	})

	run("comp", func() error {
		steps, err := eval.Composition()
		if err != nil {
			return err
		}
		fmt.Println("== §7.3 Composition: five algorithms, shrinking scope ==")
		fmt.Print(eval.FormatComposition(steps))
		fmt.Println()
		return nil
	})

	if *outPath != "" && (artifact.Phases != nil || artifact.Ladder != nil) {
		// Merge into the existing artifact rather than overwriting it: the
		// optimize experiment (possibly this very invocation) appends runs
		// under its own key, and those must survive a phases/ladder rewrite.
		doc := map[string]json.RawMessage{}
		if raw, err := os.ReadFile(*outPath); err == nil {
			if err := json.Unmarshal(raw, &doc); err != nil {
				doc = map[string]json.RawMessage{}
			}
		}
		put := func(key string, v any) {
			data, err := json.Marshal(v)
			if err != nil {
				fmt.Fprintf(os.Stderr, "lyra-bench: %v\n", err)
				os.Exit(1)
			}
			doc[key] = data
		}
		if artifact.Phases != nil {
			put("phases", artifact.Phases)
		}
		if artifact.Ladder != nil {
			put("ladder", artifact.Ladder)
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "lyra-bench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "lyra-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *outPath)
	}
}

// mergeArtifactKey replaces one top-level key of a JSON artifact in place,
// preserving every other key — so `-experiment traffic` and `-experiment
// stream` can maintain BENCH_dataplane.json without clobbering each other.
func mergeArtifactKey(path, key string, v any) error {
	doc := map[string]json.RawMessage{}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			doc = map[string]json.RawMessage{}
		}
	}
	val, err := json.Marshal(v)
	if err != nil {
		return err
	}
	doc[key] = val
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// parseKs parses the comma-separated -k list.
func parseKs(ks string) ([]int, error) {
	var sizes []int
	for _, s := range strings.Split(ks, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return nil, fmt.Errorf("bad -k: %w", err)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}
