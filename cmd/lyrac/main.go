// Command lyrac is the Lyra compiler CLI: it compiles a Lyra program plus
// an algorithm-scope specification against a target network and writes one
// chip-specific program (and control-plane stub) per switch.
//
// Usage:
//
//	lyrac -program lb.lyra -scope lb.scope -topology testbed -out out/
//	lyrac -program lb.lyra -scope lb.scope -topology fattree:8 -chip Tofino-32Q -dialect p4_16 -out out/
//
// Topologies: "testbed" (the paper's §7 network) or "fattree:<k>" (one pod
// of a k-ary fat tree; -chip selects its ASIC model).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"lyra"
)

func main() {
	var (
		programPath = flag.String("program", "", "Lyra source file (.lyra)")
		scopePath   = flag.String("scope", "", "algorithm scope specification file")
		topology    = flag.String("topology", "testbed", `target network: "testbed" or "fattree:<k>"`)
		chip        = flag.String("chip", "Tofino-32Q", "ASIC model for fattree topologies")
		dialect     = flag.String("dialect", "p4_14", "P4 dialect for P4 chips: p4_14 or p4_16")
		objective   = flag.String("objective", "none", "placement objective: none, min-placements, min-switches, prefer:<switch>")
		outDir      = flag.String("out", "lyra-out", "output directory")
		parallel    = flag.Int("parallel", 0, "worker pool size (0 = all CPUs, 1 = sequential)")
		phases      = flag.Bool("phases", false, "print the per-phase timing breakdown")
		quiet       = flag.Bool("q", false, "suppress the per-switch summary")

		optimize     = flag.Bool("optimize", false, "run the certified rewrite search before placement and report it")
		optimizeSeed = flag.Int64("optimize-seed", 1, "trace seed for the rewrite search (with -optimize)")
	)
	flag.Parse()
	if *programPath == "" || *scopePath == "" {
		fmt.Fprintln(os.Stderr, "lyrac: -program and -scope are required")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*programPath)
	if err != nil {
		fatal(err)
	}
	scopeText, err := os.ReadFile(*scopePath)
	if err != nil {
		fatal(err)
	}
	net, err := buildNetwork(*topology, *chip)
	if err != nil {
		fatal(err)
	}
	opts := []lyra.Option{
		lyra.WithSourceName(*programPath),
		lyra.WithParallelism(*parallel),
	}
	switch strings.ToLower(*dialect) {
	case "p4_14", "p414":
		opts = append(opts, lyra.WithDialect(lyra.P414))
	case "p4_16", "p416":
		opts = append(opts, lyra.WithDialect(lyra.P416))
	default:
		fatal(fmt.Errorf("unknown dialect %q", *dialect))
	}
	switch {
	case strings.EqualFold(*objective, "none"):
	case strings.EqualFold(*objective, "min-placements"):
		opts = append(opts, lyra.WithObjective(lyra.ObjectiveMinPlacements))
	case strings.EqualFold(*objective, "min-switches"):
		opts = append(opts, lyra.WithObjective(lyra.ObjectiveMinSwitches))
	case strings.HasPrefix(*objective, "prefer:"):
		opts = append(opts, lyra.WithPreferSwitch(strings.TrimPrefix(*objective, "prefer:")))
	default:
		fatal(fmt.Errorf("unknown objective %q", *objective))
	}
	if *optimize {
		opts = append(opts, lyra.WithOptimize(lyra.OptimizeOptions{Seed: *optimizeSeed}))
	}
	res, err := lyra.New(opts...).Compile(context.Background(), string(src), string(scopeText), net)
	if err != nil {
		fatal(err)
	}
	if err := res.WriteTo(*outDir); err != nil {
		fatal(err)
	}
	if !*quiet {
		fmt.Printf("compiled %s in %s (solve %s, %d SMT instance(s))\n", *programPath,
			res.CompileTime.Round(1e6), res.SolveTime.Round(1e6), res.SolveInstances)
		if *phases {
			for _, pt := range res.Phases {
				fmt.Printf("  phase %-8s %s\n", pt.Phase, pt.Duration.Round(1e3))
			}
			st := res.SolverStats
			fmt.Printf("  solver: %d decisions, %d propagations, %d conflicts, %d restarts\n",
				st.Decisions, st.Propagations, st.Conflicts, st.Restarts)
		}
		if res.Optimization != nil {
			fmt.Print(res.Optimization)
		}
		if res.Diagnostics.FellBack() {
			fmt.Printf("degraded solve:\n%s\n", res.Diagnostics)
		}
		for _, sw := range res.Switches() {
			a := res.Artifact(sw)
			fmt.Printf("  %-8s %-6s %4d LoC  %2d tables  %2d actions  %d registers\n",
				sw, a.Dialect, a.LoC, a.Tables, a.Actions, a.Registers)
		}
		fmt.Printf("wrote artifacts to %s/\n", *outDir)
	}
}

func buildNetwork(spec, chip string) (*lyra.Network, error) {
	if spec == "testbed" {
		return lyra.Testbed(), nil
	}
	if k, ok := strings.CutPrefix(spec, "fattree:"); ok {
		n, err := strconv.Atoi(k)
		if err != nil || n < 2 {
			return nil, fmt.Errorf("bad fattree size %q", k)
		}
		model, err := chipModel(chip)
		if err != nil {
			return nil, err
		}
		return lyra.FatTreePod(n, model), nil
	}
	return nil, fmt.Errorf("unknown topology %q", spec)
}

func chipModel(name string) (*lyra.ChipModel, error) {
	switch name {
	case "RMT":
		return lyra.RMT, nil
	case "Tofino-32Q":
		return lyra.Tofino32Q, nil
	case "Tofino-64Q":
		return lyra.Tofino64Q, nil
	case "SiliconOne":
		return lyra.SiliconOne, nil
	case "Trident-4":
		return lyra.Trident4, nil
	}
	return nil, fmt.Errorf("unknown chip %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lyrac:", err)
	os.Exit(1)
}
