package main

import (
	"testing"

	"lyra"
)

func TestBuildNetwork(t *testing.T) {
	n, err := buildNetwork("testbed", "")
	if err != nil || len(n.Switches) != 10 {
		t.Fatalf("testbed: %v / %d switches", err, len(n.Switches))
	}
	n, err = buildNetwork("fattree:8", "Tofino-32Q")
	if err != nil || len(n.Switches) != 8 {
		t.Fatalf("fattree: %v", err)
	}
	if _, err := buildNetwork("fattree:x", "Tofino-32Q"); err == nil {
		t.Error("bad size accepted")
	}
	if _, err := buildNetwork("ring", ""); err == nil {
		t.Error("unknown topology accepted")
	}
	if _, err := buildNetwork("fattree:4", "NoSuchChip"); err == nil {
		t.Error("unknown chip accepted")
	}
}

func TestChipModels(t *testing.T) {
	for name, want := range map[string]*lyra.ChipModel{
		"RMT":        lyra.RMT,
		"Tofino-32Q": lyra.Tofino32Q,
		"Tofino-64Q": lyra.Tofino64Q,
		"SiliconOne": lyra.SiliconOne,
		"Trident-4":  lyra.Trident4,
	} {
		got, err := chipModel(name)
		if err != nil || got != want {
			t.Errorf("%s: %v %v", name, got, err)
		}
	}
	if _, err := chipModel("ghost"); err == nil {
		t.Error("unknown chip accepted")
	}
}
