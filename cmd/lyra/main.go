// Command lyra is the umbrella CLI for operating the compiler as a
// service. Its one subcommand today:
//
//	lyra serve -addr :8080          # run the control-plane daemon
//
// The daemon exposes the HTTP+JSON API in internal/serve (compile,
// sessions, fault events, table updates, health, metrics) and drains
// cleanly on SIGINT/SIGTERM: new work is refused with 429/"draining",
// in-flight work finishes, then the process exits. See DESIGN.md
// "The serve daemon" and the README quick-start.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lyra/internal/serve"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "serve":
		if err := runServe(os.Args[2:]); err != nil {
			fmt.Fprintf(os.Stderr, "lyra serve: %v\n", err)
			os.Exit(1)
		}
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "lyra: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: lyra <command> [flags]

commands:
  serve    run the control-plane compile daemon

Run "lyra serve -h" for the daemon's flags.
`)
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:8080", "listen address")
		inflight   = fs.Int("inflight", 0, "max concurrently executing compiles (0 = all CPUs)")
		queue      = fs.Int("queue", 0, "admitted-but-waiting work beyond -inflight (0 = 4x inflight)")
		deadline   = fs.Duration("deadline", 15*time.Second, "default per-request deadline")
		maxDl      = fs.Duration("max-deadline", 60*time.Second, "cap on client-requested deadlines")
		parallel   = fs.Int("parallel", 1, "per-compile worker fan-out")
		cacheN     = fs.Int("cache", 256, "artifact cache entries")
		drainWait  = fs.Duration("drain", 30*time.Second, "graceful-drain budget on shutdown")
		testFaults = fs.Bool("test-faults", false, "honor X-Lyra-Test-* fault-injection headers (testing only)")
	)
	fs.Parse(args)

	srv := serve.NewServer(serve.Config{
		MaxInflight:      *inflight,
		QueueDepth:       *queue,
		DefaultDeadline:  *deadline,
		MaxDeadline:      *maxDl,
		Parallelism:      *parallel,
		CacheEntries:     *cacheN,
		EnableTestFaults: *testFaults,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("lyra serve: listening on %s\n", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err // listener failed before any signal
	case <-ctx.Done():
	}
	stop()
	fmt.Println("lyra serve: draining")

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	drainErr := srv.Drain(drainCtx)
	if err := httpSrv.Shutdown(drainCtx); err != nil && drainErr == nil {
		drainErr = err
	}
	if serveErr := <-errCh; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) && drainErr == nil {
		drainErr = serveErr
	}
	if drainErr == nil {
		fmt.Println("lyra serve: drained cleanly")
	}
	return drainErr
}
