package lyra

import (
	"context"
	"errors"
	"testing"
)

// TestRecompileReusesSolverIncrementally: a fault outside the deployment
// region leaves the component's encoding unchanged, so Recompile must
// re-solve the cached persistent solver (no re-encode) and a fault inside
// the region must rebuild it.
func TestRecompileReusesSolverIncrementally(t *testing.T) {
	base := compileQuickLB(t)
	if base.SolverStats.Encodes != 1 || base.SolverStats.SolveCalls != 1 {
		t.Fatalf("base stats = %+v, want one encode and one solve", base.SolverStats)
	}

	// Core1 carries no loadbalancer scope: same component key, cache hit.
	res, _, err := base.Recompile(Scenario{Name: "core1", Events: []FaultEvent{SwitchDown("Core1")}})
	if err != nil {
		t.Fatalf("recompile: %v", err)
	}
	if res.SolverStats.Encodes != 1 {
		t.Errorf("Encodes = %d after irrelevant fault, want 1 (cached encoding reused)", res.SolverStats.Encodes)
	}
	if res.SolverStats.SolveCalls != 2 {
		t.Errorf("SolveCalls = %d, want 2 (incremental re-solve on the same solver)", res.SolverStats.SolveCalls)
	}

	// Agg3 is inside the region: the scope resolution changes, the key
	// misses, and the component encodes fresh.
	res2, _, err := base.Recompile(Scenario{Name: "agg3", Events: []FaultEvent{SwitchDown("Agg3")}})
	if err != nil {
		t.Fatalf("recompile: %v", err)
	}
	if res2.SolverStats.Encodes != 1 || res2.SolverStats.SolveCalls != 1 {
		t.Errorf("stats after in-region fault = %+v, want a fresh encode+solve", res2.SolverStats)
	}

	// Chained irrelevant faults keep riding the same solver.
	res3, _, err := res.Recompile(Scenario{Name: "core2", Events: []FaultEvent{SwitchDown("Core2")}})
	if err != nil {
		t.Fatalf("chained recompile: %v", err)
	}
	if res3.SolverStats.Encodes != 1 {
		t.Errorf("Encodes = %d after chained irrelevant fault, want 1", res3.SolverStats.Encodes)
	}
	if res3.SolverStats.SolveCalls != 3 {
		t.Errorf("SolveCalls = %d, want 3", res3.SolverStats.SolveCalls)
	}
	checkForwarding(t, res3, "chained-incremental")
}

// TestRecompileCancelledMidSolveIsTyped cancels the context between the
// scope and solve phases of a Recompile and demands two things: the error
// is the typed cancellation error (errors.Is ErrTimeout and ErrBudget, not
// a generic failure), and the previous Result stays fully usable — a
// daemon that timed one recompile out must be able to keep serving the old
// artifacts and retry later.
func TestRecompileCancelledMidSolveIsTyped(t *testing.T) {
	base := compileQuickLB(t)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// The observer runs inline as each phase completes; cancelling right
	// after scope resolution guarantees the solver starts with a dead
	// context and trips its first cancellation poll — deterministically
	// "mid-solve" without any timing dependence.
	obs := ObserverFunc(func(pt PhaseTiming) {
		if pt.Phase == PhaseScope {
			cancel()
		}
	})
	sc := Scenario{Name: "agg3", Events: []FaultEvent{SwitchDown("Agg3")}}
	_, _, err := New(WithObserver(obs)).Recompile(ctx, base, sc)
	if err == nil {
		t.Fatal("cancelled recompile succeeded")
	}
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("cancelled recompile error = %v, want errors.Is(err, ErrTimeout)", err)
	}
	if !errors.Is(err, ErrBudget) {
		t.Errorf("cancelled recompile error = %v, want errors.Is(err, ErrBudget)", err)
	}
	var internal *InternalError
	if errors.As(err, &internal) {
		t.Errorf("cancellation surfaced as an internal error: %v", err)
	}

	// The previous result must be untouched: same scenario recompiles
	// cleanly from it and the recompiled network still forwards.
	res, delta, err := base.Recompile(sc)
	if err != nil {
		t.Fatalf("recompile after cancelled attempt: %v", err)
	}
	if delta == nil || len(res.Artifacts) == 0 {
		t.Fatalf("recompile after cancelled attempt produced no plan (delta=%v)", delta)
	}
	checkForwarding(t, res, "post-cancel")
}
